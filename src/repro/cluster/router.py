"""Fingerprint-sharded cluster front-end with admission control.

:class:`ClusterRouter` is the serving topology's front door: it owns ``N``
shards (each a full engine + :class:`~repro.service.QueryServer` core,
in-process or a separate worker process), routes every stateless query by
its **request fingerprint** -- so identical queries always land on the same
shard and keep coalescing/caching there -- and pins stateful edit sessions
to the shard that opened them (the session's server-side state lives
nowhere else).

The router adds the cluster-level behaviors a single server cannot provide:

* **Admission control / backpressure** -- at most ``queue_limit`` queries
  may be pending per shard; the next one is *shed* with
  :class:`ShardBusyError` carrying a ``retry_after`` hint, instead of
  growing an unbounded queue.  Sheds are counted per shard and surfaced in
  :meth:`stats` (``totals.shed``) and Prometheus
  (``repro_cluster_shed_total``).  Pinned-session traffic bypasses
  admission: shedding mid-chain would strand server-side session state,
  and the bound exists to protect shards from anonymous query floods.
* **Shared cache tier** -- all shards point at the same content-addressed
  disk cache directory (when configured), so a result computed on one shard
  is a disk hit on any other; the router's **hot-key gossip** additionally
  prefetches a fingerprint into the non-owning shards' memory LRU once it
  has been routed ``gossip_threshold`` times (pinned sessions are the one
  path that sends a fingerprint to a shard that does not own it).
* **Graceful drain** -- :meth:`drain` waits until every admitted request on
  every shard has been answered and profile sinks are flushed;
  :meth:`stop` drains, then tears the shards down.
* **One metrics surface** -- :meth:`export_metrics_prometheus` sums the
  per-shard expositions (:func:`repro.cluster.metrics.aggregate_prometheus`)
  and appends the router's own ``repro_cluster_*`` series; the result
  parses like a single server's export.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field

from repro.core.problem import RankingProblem
from repro.engine.engine import SolveRequest
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.service.server import QueryServerOptions, ServiceStats

from repro.cluster.metrics import aggregate_prometheus
from repro.cluster.shard import InprocShard, ProcessShard

__all__ = [
    "ClusterOptions",
    "ClusterResponse",
    "ClusterStats",
    "ClusterRouter",
    "ShardBusyError",
]

_ROUTE_HEX_DIGITS = 16  # leading fingerprint digits used for shard routing


class ShardBusyError(RuntimeError):
    """A shard's admission queue is full; retry after ``retry_after`` seconds.

    This is the cluster's backpressure signal: the request was *not*
    admitted (nothing was enqueued), so retrying the identical call after
    the hint is always safe.
    """

    def __init__(self, shard: int, retry_after: float) -> None:
        super().__init__(
            f"shard {shard} is at its admission limit; "
            f"retry after {retry_after:.3f}s"
        )
        self.shard = shard
        self.retry_after = retry_after


@dataclass(frozen=True)
class ClusterOptions:
    """Topology and admission knobs of the cluster front-end.

    Attributes:
        num_shards: Worker count; each shard is a full engine + server core.
        transport: ``"inproc"`` (shards share the router's event loop; zero
            serialization, the right default for tests and 1-CPU boxes) or
            ``"process"`` (each shard is a spawned worker process talking
            wire dicts over pipes).
        queue_limit: Max queries pending per shard before the router sheds
            (admission control); pinned-session traffic is exempt.
        retry_after: Seconds a shed caller is told to back off
            (:attr:`ShardBusyError.retry_after`).
        gossip_threshold: Route count after which a hot fingerprint is
            prefetched into every non-owning shard's memory cache
            (``0`` disables gossip).  Effective cross-shard only with a
            shared ``cache_dir``.
        hot_count_limit: Max distinct fingerprints the gossip hot-counter
            tracks; the least recently routed entry is dropped beyond this.
            The bound turns what was a slow per-fingerprint memory leak in
            a long-lived router into an LRU working set (an evicted
            fingerprint that turns hot again simply recounts from zero --
            re-gossiping a hot key is idempotent).
        cache_dir: Shared content-addressed disk cache directory handed to
            every shard (cross-shard hit tier).  ``None`` keeps caches
            shard-private.
        server: Per-shard :class:`QueryServerOptions`; ``cache_dir`` above
            overrides the copy each shard receives, and a ``hot_set_path``
            is suffixed ``.s<index>`` per shard so hot-set files never
            collide.
        mp_method: ``multiprocessing`` start method for process shards.
    """

    num_shards: int = 2
    transport: str = "inproc"
    queue_limit: int = 32
    retry_after: float = 0.05
    gossip_threshold: int = 3
    hot_count_limit: int = 4096
    cache_dir: str | None = None
    server: QueryServerOptions = field(default_factory=QueryServerOptions)
    mp_method: str = "spawn"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.transport not in ("inproc", "process"):
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                "use 'inproc' or 'process'"
            )
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.hot_count_limit < 1:
            raise ValueError("hot_count_limit must be >= 1")


@dataclass
class ClusterResponse:
    """What a caller gets back from the router (plus which shard served it)."""

    request_id: str
    shard: int
    result: object
    fingerprint: str
    cache_hit: bool
    coalesced: bool
    latency: float
    batch_size: int
    served: str | None = None
    session_id: str | None = None


@dataclass
class ClusterStats:
    """Cluster-wide aggregate plus the per-shard drill-down.

    ``totals`` reuses :class:`~repro.service.ServiceStats`: counters are
    sums over shards, ``shed`` is the router's admission-reject count, and
    the latency distribution is the *router-side* end-to-end view (it
    includes transport cost for process shards).
    """

    shards: int
    totals: ServiceStats
    per_shard: list
    routed: list
    shed: list
    queue_depth: list
    peak_queue_depth: list
    sessions_pinned: int
    gossip_prefetches: int
    hot_keys_tracked: int = 0

    def describe(self) -> str:
        balance = "/".join(str(n) for n in self.routed)
        return (
            f"cluster[{self.shards}] {self.totals.describe()} | "
            f"balance={balance} pinned_sessions={self.sessions_pinned} "
            f"gossip={self.gossip_prefetches}"
        )

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "totals": asdict(self.totals),
            "per_shard": [asdict(stats) for stats in self.per_shard],
            "routed": list(self.routed),
            "shed": list(self.shed),
            "queue_depth": list(self.queue_depth),
            "peak_queue_depth": list(self.peak_queue_depth),
            "sessions_pinned": self.sessions_pinned,
            "gossip_prefetches": self.gossip_prefetches,
            "hot_keys_tracked": self.hot_keys_tracked,
        }


def _sum_numeric(dicts: list) -> dict:
    """Key-wise sum of numeric entries across per-shard stat dicts."""
    merged: dict = {}
    for entry in dicts:
        for key, value in entry.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


class ClusterRouter:
    """Shard-by-fingerprint front-end over N serving workers.

    Use as an async context manager::

        options = ClusterOptions(num_shards=2, cache_dir="/tmp/tier")
        async with ClusterRouter(options) as cluster:
            response = await cluster.submit(problem, method="symgd")
    """

    def __init__(self, options: ClusterOptions | None = None) -> None:
        self.options = options or ClusterOptions()
        server_options = self.options.server
        if self.options.cache_dir is not None:
            from dataclasses import replace

            server_options = replace(
                server_options, cache_dir=self.options.cache_dir
            )
        self._server_options = server_options
        self.shards: list = []
        self._started = False
        self._closing = False
        self._pending = [0] * self.options.num_shards
        self._peak_pending = [0] * self.options.num_shards
        self._routed = [0] * self.options.num_shards
        self._shed = [0] * self.options.num_shards
        self._session_shard: dict[str, int] = {}
        self._session_counter = 0
        # Bounded LRU of route counts feeding the gossip trigger (see
        # ClusterOptions.hot_count_limit): high-cardinality fingerprint
        # traffic recycles cold entries instead of growing without bound.
        self._hot_counts: OrderedDict[str, int] = OrderedDict()
        self._gossip_tasks: set[asyncio.Task] = set()
        self._gossip_prefetches = 0
        self._request_counter = 0
        self._started_at: float | None = None
        self._finished_at: float | None = None
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(self._collect_metrics)
        self._latency_hist = self.metrics.histogram(
            "repro_cluster_request_latency_seconds",
            "Router-side end-to-end request latency (seconds, full run)",
        )

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "ClusterRouter":
        """Build and start every shard (idempotent)."""
        if self._started:
            return self
        for index in range(self.options.num_shards):
            shard_options = self._server_options
            if shard_options.hot_set_path is not None:
                from dataclasses import replace

                # Per-shard hot-set files: the resident sets differ by
                # construction (fingerprint sharding), so sharing one file
                # would have the last-drained shard clobber the others.
                shard_options = replace(
                    shard_options,
                    hot_set_path=f"{shard_options.hot_set_path}.s{index}",
                )
            if self.options.transport == "process":
                shard = ProcessShard(
                    index, shard_options, mp_method=self.options.mp_method
                )
            else:
                shard = InprocShard(index, shard_options)
            self.shards.append(shard)
        try:
            await asyncio.gather(*(shard.start() for shard in self.shards))
        except BaseException:
            await asyncio.gather(
                *(shard.stop() for shard in self.shards),
                return_exceptions=True,
            )
            self.shards.clear()
            raise
        self._started = True
        self._closing = False
        return self

    async def drain(self) -> None:
        """Wait until every admitted request on every shard is answered."""
        if self._gossip_tasks:
            await asyncio.gather(*self._gossip_tasks, return_exceptions=True)
        await asyncio.gather(*(shard.drain() for shard in self.shards))

    async def stop(self) -> None:
        """Graceful shutdown: drain everything, then tear the shards down."""
        if not self._started or self._closing:
            return
        self._closing = True
        if self._gossip_tasks:
            await asyncio.gather(*self._gossip_tasks, return_exceptions=True)
        await asyncio.gather(
            *(shard.stop() for shard in self.shards), return_exceptions=True
        )
        self.shards.clear()
        self._started = False

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _require_running(self) -> None:
        if not self._started or self._closing:
            raise RuntimeError("ClusterRouter is not running; call start() first")

    # -- routing --------------------------------------------------------------

    def shard_for(self, fingerprint: str) -> int:
        """Deterministic, stable shard index for a fingerprint.

        The leading hex digits of the content-addressed fingerprint modulo
        the shard count: no state, no RNG -- the same request routes to the
        same shard in every process, forever (for a fixed ``num_shards``).
        """
        return int(fingerprint[:_ROUTE_HEX_DIGITS], 16) % self.options.num_shards

    def _admit(self, shard: int) -> None:
        if self._pending[shard] >= self.options.queue_limit:
            self._shed[shard] += 1
            raise ShardBusyError(shard, self.options.retry_after)
        self._note_pending(shard)

    def _note_pending(self, shard: int) -> None:
        self._pending[shard] += 1
        if self._pending[shard] > self._peak_pending[shard]:
            self._peak_pending[shard] = self._pending[shard]

    def _release(self, shard: int) -> None:
        self._pending[shard] -= 1

    def _note_routed(self, shard: int, fingerprint: str) -> None:
        self._routed[shard] += 1
        self._maybe_gossip(shard, fingerprint)

    def _maybe_gossip(self, owner: int, fingerprint: str) -> None:
        threshold = self.options.gossip_threshold
        if threshold < 1 or self.options.num_shards < 2:
            return
        count = self._hot_counts.get(fingerprint, 0) + 1
        self._hot_counts[fingerprint] = count
        self._hot_counts.move_to_end(fingerprint)
        while len(self._hot_counts) > self.options.hot_count_limit:
            self._hot_counts.popitem(last=False)
        if count != threshold:
            return  # fire exactly once per fingerprint, when it turns hot
        for index, shard in enumerate(self.shards):
            if index == owner:
                continue
            task = asyncio.get_running_loop().create_task(
                self._gossip_prefetch(shard, fingerprint)
            )
            self._gossip_tasks.add(task)
            task.add_done_callback(self._gossip_tasks.discard)

    async def _gossip_prefetch(self, shard, fingerprint: str) -> None:
        try:
            if await shard.prefetch(fingerprint):
                self._gossip_prefetches += 1
        except Exception:  # gossip is best-effort; never fail a request path
            pass

    def _stamp_request(self) -> float:
        now = time.perf_counter()
        if self._started_at is None:
            self._started_at = now
        return now

    def _observe(self, arrived: float) -> float:
        finished = time.perf_counter()
        self._finished_at = finished
        latency = finished - arrived
        self._latency_hist.observe(latency)
        return latency

    # -- stateless queries ----------------------------------------------------

    async def submit(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
        request_id: str | None = None,
    ) -> ClusterResponse:
        """Route one query to its owning shard and await the response.

        Raises :class:`ShardBusyError` (without enqueueing anything) when
        the owning shard is at its admission limit.
        """
        self._require_running()
        # Build the request up front: validates method/options and yields
        # the content-addressed fingerprint that picks the shard.
        fingerprint = SolveRequest(problem, method, dict(params or {})).fingerprint
        shard_index = self.shard_for(fingerprint)
        self._admit(shard_index)
        self._request_counter += 1
        if request_id is None:
            request_id = f"c{self._request_counter}"
        arrived = self._stamp_request()
        try:
            payload = await self.shards[shard_index].submit(
                problem, method, params, request_id=request_id
            )
        finally:
            self._release(shard_index)
        latency = self._observe(arrived)
        self._note_routed(shard_index, fingerprint)
        return ClusterResponse(
            request_id=request_id,
            shard=shard_index,
            result=payload["result"],
            fingerprint=payload["fingerprint"],
            cache_hit=payload["cache_hit"],
            coalesced=payload["coalesced"],
            latency=latency,
            batch_size=payload["batch_size"],
            served=payload["served"],
        )

    # -- pinned sessions ------------------------------------------------------

    def session_shard(self, session_id: str) -> int:
        """The shard a session is pinned to (raises for unknown ids)."""
        try:
            return self._session_shard[session_id]
        except KeyError:
            raise ValueError(
                f"unknown cluster session {session_id!r}; open_session() "
                "or resume_session() first"
            ) from None

    def _pin_session(self, shard_index: int) -> str:
        self._session_counter += 1
        session_id = f"s{shard_index}-{self._session_counter}"
        self._session_shard[session_id] = shard_index
        return session_id

    async def open_session(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
        aggressive: bool = False,
    ) -> str:
        """Open an edit session, pinned to the base problem's owning shard.

        Returns a router-assigned id of the form ``s<shard>-<n>`` -- the
        pin is readable right off the id.
        """
        self._require_running()
        fingerprint = SolveRequest(problem, method, dict(params or {})).fingerprint
        shard_index = self.shard_for(fingerprint)
        session_id = self._pin_session(shard_index)
        try:
            await self.shards[shard_index].open_session(
                problem, method, params, session_id=session_id,
                aggressive=aggressive,
            )
        except BaseException:
            self._session_shard.pop(session_id, None)
            raise
        return session_id

    async def submit_session(
        self,
        session_id: str,
        deltas=None,
        method: str | None = None,
        params: dict | None = None,
        request_id: str | None = None,
    ) -> ClusterResponse:
        """Apply edits to a pinned session and solve its head on its shard.

        Session traffic is never shed and never re-routed: the session's
        state lives on exactly one shard, so continuity wins over admission
        (the bound protects shards from stateless floods, which is also why
        this path still counts toward the shard's pending depth -- admission
        sees session load, it just cannot reject it).
        """
        self._require_running()
        shard_index = self.session_shard(session_id)
        self._request_counter += 1
        if request_id is None:
            request_id = f"c{self._request_counter}"
        self._note_pending(shard_index)  # visible to admission, not bounded
        arrived = self._stamp_request()
        try:
            payload = await self.shards[shard_index].submit_session(
                session_id, deltas=deltas, method=method, params=params,
                request_id=request_id,
            )
        finally:
            self._release(shard_index)
        latency = self._observe(arrived)
        self._note_routed(shard_index, payload["fingerprint"])
        return ClusterResponse(
            request_id=request_id,
            shard=shard_index,
            result=payload["result"],
            fingerprint=payload["fingerprint"],
            cache_hit=payload["cache_hit"],
            coalesced=payload["coalesced"],
            latency=latency,
            batch_size=payload["batch_size"],
            served=payload["served"],
            session_id=session_id,
        )

    async def export_session(self, session_id: str) -> dict:
        self._require_running()
        return await self.shards[self.session_shard(session_id)].export_session(
            session_id
        )

    async def resume_session(self, data: dict) -> str:
        """Resume an exported session, re-pinning by its *base* fingerprint.

        The pin recomputes from the session's base problem and method, so a
        session resumed on a restarted cluster lands on the shard that
        served (and cached) its history.
        """
        self._require_running()
        base = RankingProblem.from_dict(data["base"])
        method = data.get("method", "symgd")
        fingerprint = SolveRequest(
            base, method, dict(data.get("params") or {})
        ).fingerprint
        shard_index = self.shard_for(fingerprint)
        session_id = self._pin_session(shard_index)
        payload = dict(data, session_id=session_id)
        try:
            await self.shards[shard_index].resume_session(
                payload, session_id=session_id
            )
        except BaseException:
            self._session_shard.pop(session_id, None)
            raise
        return session_id

    async def close_session(self, session_id: str) -> None:
        self._require_running()
        shard_index = self.session_shard(session_id)
        await self.shards[shard_index].close_session(session_id)
        self._session_shard.pop(session_id, None)

    async def session_info(self, session_id: str) -> dict:
        self._require_running()
        info = await self.shards[self.session_shard(session_id)].session_info(
            session_id
        )
        info["shard"] = self.session_shard(session_id)
        return info

    # -- health / stats / metrics ---------------------------------------------

    async def health(self) -> dict:
        """Per-shard liveness payloads keyed by shard index."""
        self._require_running()
        payloads = await asyncio.gather(
            *(shard.health() for shard in self.shards)
        )
        return {
            "shards": self.options.num_shards,
            "transport": self.options.transport,
            "per_shard": {index: payload for index, payload in enumerate(payloads)},
        }

    async def stats(self) -> ClusterStats:
        """Cluster-wide :class:`ClusterStats` (totals + per-shard views)."""
        self._require_running()
        per_shard = list(
            await asyncio.gather(*(shard.stats() for shard in self.shards))
        )
        hist = self._latency_hist
        requests = sum(stats.requests for stats in per_shard)
        wall = (
            (self._finished_at or 0.0) - (self._started_at or 0.0)
            if self._started_at is not None
            else 0.0
        )
        totals = ServiceStats(
            requests=requests,
            coalesced=sum(stats.coalesced for stats in per_shard),
            cache_hits=sum(stats.cache_hits for stats in per_shard),
            batches=sum(stats.batches for stats in per_shard),
            shed=sum(self._shed),
            solver_invocations=sum(
                stats.solver_invocations for stats in per_shard
            ),
            mean_latency=hist.mean,
            p50_latency=hist.quantile(0.50),
            p95_latency=hist.quantile(0.95),
            p99_latency=hist.quantile(0.99),
            max_latency=hist.max,
            throughput=requests / wall if wall > 0 else 0.0,
            wall_time=wall,
            history_window=sum(stats.history_window for stats in per_shard),
            cache=_sum_numeric([stats.cache for stats in per_shard]),
            sessions_open=sum(stats.sessions_open for stats in per_shard),
            sessions_opened=sum(stats.sessions_opened for stats in per_shard),
            sessions_evicted=sum(
                stats.sessions_evicted for stats in per_shard
            ),
            prewarmed=sum(stats.prewarmed for stats in per_shard),
            incremental=_sum_numeric(
                [stats.incremental for stats in per_shard]
            ),
        )
        return ClusterStats(
            shards=self.options.num_shards,
            totals=totals,
            per_shard=per_shard,
            routed=list(self._routed),
            shed=list(self._shed),
            queue_depth=list(self._pending),
            peak_queue_depth=list(self._peak_pending),
            sessions_pinned=len(self._session_shard),
            gossip_prefetches=self._gossip_prefetches,
            hot_keys_tracked=len(self._hot_counts),
        )

    def _collect_metrics(self) -> dict:
        shard_labels = ("shard",)
        return {
            "repro_cluster_shards": (
                "gauge", "Shards in the cluster", self.options.num_shards,
            ),
            "repro_cluster_requests_total": (
                "counter", "Requests routed, by shard",
                {(str(i),): count for i, count in enumerate(self._routed)},
                shard_labels,
            ),
            "repro_cluster_shed_total": (
                "counter", "Requests shed by admission control, by shard",
                {(str(i),): count for i, count in enumerate(self._shed)},
                shard_labels,
            ),
            "repro_cluster_queue_depth": (
                "gauge", "Requests currently pending, by shard",
                {(str(i),): depth for i, depth in enumerate(self._pending)},
                shard_labels,
            ),
            "repro_cluster_peak_queue_depth": (
                "gauge", "Highest pending depth observed, by shard",
                {(str(i),): depth for i, depth in enumerate(self._peak_pending)},
                shard_labels,
            ),
            "repro_cluster_retry_after_seconds": (
                "gauge", "Back-off hint handed to shed callers",
                self.options.retry_after,
            ),
            "repro_cluster_sessions_pinned": (
                "gauge", "Sessions currently pinned to a shard",
                len(self._session_shard),
            ),
            "repro_cluster_gossip_prefetch_total": (
                "counter", "Hot fingerprints prefetched into non-owning shards",
                self._gossip_prefetches,
            ),
            "repro_cluster_hot_keys_tracked": (
                "gauge",
                "Fingerprints currently tracked by the gossip hot-counter",
                len(self._hot_counts),
            ),
        }

    async def export_metrics_prometheus(self) -> str:
        """One cluster-wide Prometheus exposition.

        Per-shard samples are summed (:func:`aggregate_prometheus`) and the
        router's own ``repro_cluster_*`` series are appended; the names are
        disjoint, so the concatenation is a valid exposition.
        """
        self._require_running()
        texts = list(
            await asyncio.gather(
                *(shard.export_metrics_prometheus() for shard in self.shards)
            )
        )
        return aggregate_prometheus(texts) + render_prometheus(self.metrics)
