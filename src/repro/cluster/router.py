"""Fingerprint-sharded cluster front-end with admission control.

:class:`ClusterRouter` is the serving topology's front door: it owns ``N``
shards (each a full engine + :class:`~repro.service.QueryServer` core,
in-process or a separate worker process), routes every stateless query by
its **request fingerprint** -- so identical queries always land on the same
shard and keep coalescing/caching there -- and pins stateful edit sessions
to the shard that opened them (the session's server-side state lives
nowhere else).

The router adds the cluster-level behaviors a single server cannot provide:

* **Admission control / backpressure** -- at most ``queue_limit`` queries
  may be pending per shard; the next one is *shed* with
  :class:`ShardBusyError` carrying a ``retry_after`` hint, instead of
  growing an unbounded queue.  Sheds are counted per shard and surfaced in
  :meth:`stats` (``totals.shed``) and Prometheus
  (``repro_cluster_shed_total``).  Pinned-session traffic bypasses
  admission: shedding mid-chain would strand server-side session state,
  and the bound exists to protect shards from anonymous query floods.
* **Shared cache tier** -- all shards point at the same content-addressed
  disk cache directory (when configured), so a result computed on one shard
  is a disk hit on any other; the router's **hot-key gossip** additionally
  prefetches a fingerprint into the non-owning shards' memory LRU once it
  has been routed ``gossip_threshold`` times (pinned sessions are the one
  path that sends a fingerprint to a shard that does not own it).
* **Graceful drain** -- :meth:`drain` waits until every admitted request on
  every shard has been answered and profile sinks are flushed;
  :meth:`stop` drains, then tears the shards down.
* **Supervision & failover** -- a supervisor loop probes shard health on an
  interval; a dead shard (process exit, pipe EOF, probe timeout, injected
  crash) is restarted with exponential backoff up to ``max_restarts``
  times, its hot set reloads from the per-shard hot-set file, and every
  session pinned to it is replayed from the router's append-only **session
  journal** (base + delta chain, the :meth:`ServerSession.to_dict` wire
  format).  While the shard is down, its *stateless* query traffic fails
  over to the next live shard -- any shard computes the same bitwise
  answer, so failover is correctness-free -- and session traffic fails with
  a retryable :class:`ShardCrashedError` until the replay finishes.
* **One metrics surface** -- :meth:`export_metrics_prometheus` sums the
  per-shard expositions (:func:`repro.cluster.metrics.aggregate_prometheus`)
  and appends the router's own ``repro_cluster_*`` series; the result
  parses like a single server's export.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field

from repro.chaos import ChaosInjector, FaultPlan
from repro.core.problem import RankingProblem
from repro.engine.engine import SolveRequest
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.service.errors import DeadlineExceededError
from repro.service.server import QueryServerOptions, ServiceStats

from repro.cluster.metrics import aggregate_prometheus
from repro.cluster.shard import InprocShard, ProcessShard, ShardDeadError

__all__ = [
    "ClusterOptions",
    "ClusterResponse",
    "ClusterStats",
    "ClusterRouter",
    "ShardBusyError",
    "ShardCrashedError",
]

_ROUTE_HEX_DIGITS = 16  # leading fingerprint digits used for shard routing


class ShardBusyError(RuntimeError):
    """A shard's admission queue is full; retry after ``retry_after`` seconds.

    This is the cluster's backpressure signal: the request was *not*
    admitted (nothing was enqueued), so retrying the identical call after
    the hint is always safe.
    """

    #: Backpressure is transient by definition (see repro.service.RetryPolicy).
    retryable = True

    def __init__(self, shard: int, retry_after: float) -> None:
        super().__init__(
            f"shard {shard} is at its admission limit; "
            f"retry after {retry_after:.3f}s"
        )
        self.shard = shard
        self.retry_after = retry_after


class ShardCrashedError(RuntimeError):
    """The target shard is down (and, for sessions, not failover-eligible).

    Raised when a request cannot be served because its shard died:
    session traffic while the owning shard restarts (session state lives on
    exactly one shard, so there is nowhere to fail over to), or stateless
    traffic when *no* live shard remains.  ``retryable`` is the supervision
    verdict: ``True`` while a restart is pending or in progress (back off
    ``retry_after`` seconds and reissue), ``False`` once the shard's
    restart budget is exhausted -- the terminal state, surfaced instead of
    retrying forever.
    """

    def __init__(
        self, shard: int, retry_after: float, terminal: bool = False
    ) -> None:
        state = "permanently down" if terminal else "restarting"
        super().__init__(
            f"shard {shard} crashed and is {state}; "
            + ("give up" if terminal else f"retry after {retry_after:.3f}s")
        )
        self.shard = shard
        self.retry_after = retry_after
        self.terminal = terminal
        self.retryable = not terminal


@dataclass(frozen=True)
class ClusterOptions:
    """Topology and admission knobs of the cluster front-end.

    Attributes:
        num_shards: Worker count; each shard is a full engine + server core.
        transport: ``"inproc"`` (shards share the router's event loop; zero
            serialization, the right default for tests and 1-CPU boxes) or
            ``"process"`` (each shard is a spawned worker process talking
            wire dicts over pipes).
        queue_limit: Max queries pending per shard before the router sheds
            (admission control); pinned-session traffic is exempt.
        retry_after: Seconds a shed caller is told to back off
            (:attr:`ShardBusyError.retry_after`).
        gossip_threshold: Route count after which a hot fingerprint is
            prefetched into every non-owning shard's memory cache
            (``0`` disables gossip).  Effective cross-shard only with a
            shared ``cache_dir``.
        hot_count_limit: Max distinct fingerprints the gossip hot-counter
            tracks; the least recently routed entry is dropped beyond this.
            The bound turns what was a slow per-fingerprint memory leak in
            a long-lived router into an LRU working set (an evicted
            fingerprint that turns hot again simply recounts from zero --
            re-gossiping a hot key is idempotent).
        cache_dir: Shared content-addressed disk cache directory handed to
            every shard (cross-shard hit tier).  ``None`` keeps caches
            shard-private.
        server: Per-shard :class:`QueryServerOptions`; ``cache_dir`` above
            overrides the copy each shard receives, and a ``hot_set_path``
            is suffixed ``.s<index>`` per shard so hot-set files never
            collide.
        mp_method: ``multiprocessing`` start method for process shards.
        supervise: Run the supervisor: health probing, automatic restarts,
            session replay.  ``False`` leaves a dead shard dead (stateless
            traffic still fails over; sessions fail terminally).
        health_interval: Seconds between supervisor health probe rounds.
        health_timeout: Seconds a probe may hang before the shard is
            declared dead (covers a live-but-wedged worker).
        max_restarts: Restarts allowed per shard before it is terminal.
        restart_backoff: Base restart delay; doubles per prior restart of
            that shard (exponential backoff).
        restart_backoff_max: Ceiling on the restart delay.
    """

    num_shards: int = 2
    transport: str = "inproc"
    queue_limit: int = 32
    retry_after: float = 0.05
    gossip_threshold: int = 3
    hot_count_limit: int = 4096
    cache_dir: str | None = None
    server: QueryServerOptions = field(default_factory=QueryServerOptions)
    mp_method: str = "spawn"
    supervise: bool = True
    health_interval: float = 0.25
    health_timeout: float = 5.0
    max_restarts: int = 3
    restart_backoff: float = 0.05
    restart_backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.transport not in ("inproc", "process"):
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                "use 'inproc' or 'process'"
            )
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.hot_count_limit < 1:
            raise ValueError("hot_count_limit must be >= 1")
        if self.health_interval <= 0:
            raise ValueError("health_interval must be > 0")
        if self.health_timeout <= 0:
            raise ValueError("health_timeout must be > 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff < 0 or self.restart_backoff_max < 0:
            raise ValueError("restart backoff values must be >= 0")


@dataclass
class ClusterResponse:
    """What a caller gets back from the router (plus which shard served it)."""

    request_id: str
    shard: int
    result: object
    fingerprint: str
    cache_hit: bool
    coalesced: bool
    latency: float
    batch_size: int
    served: str | None = None
    session_id: str | None = None
    #: True when the owning shard was down and a fallback shard answered.
    failover: bool = False


@dataclass
class ClusterStats:
    """Cluster-wide aggregate plus the per-shard drill-down.

    ``totals`` reuses :class:`~repro.service.ServiceStats`: counters are
    sums over shards, ``shed`` is the router's admission-reject count, and
    the latency distribution is the *router-side* end-to-end view (it
    includes transport cost for process shards).
    """

    shards: int
    totals: ServiceStats
    per_shard: list
    routed: list
    shed: list
    queue_depth: list
    peak_queue_depth: list
    sessions_pinned: int
    gossip_prefetches: int
    hot_keys_tracked: int = 0
    restarts: list = field(default_factory=list)
    failovers: list = field(default_factory=list)
    dead: list = field(default_factory=list)
    deadline_exceeded: int = 0
    restart_log: list = field(default_factory=list)

    def describe(self) -> str:
        balance = "/".join(str(n) for n in self.routed)
        return (
            f"cluster[{self.shards}] {self.totals.describe()} | "
            f"balance={balance} pinned_sessions={self.sessions_pinned} "
            f"gossip={self.gossip_prefetches} "
            f"restarts={sum(self.restarts)} failovers={sum(self.failovers)}"
        )

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "totals": asdict(self.totals),
            "per_shard": [asdict(stats) for stats in self.per_shard],
            "routed": list(self.routed),
            "shed": list(self.shed),
            "queue_depth": list(self.queue_depth),
            "peak_queue_depth": list(self.peak_queue_depth),
            "sessions_pinned": self.sessions_pinned,
            "gossip_prefetches": self.gossip_prefetches,
            "hot_keys_tracked": self.hot_keys_tracked,
            "restarts": list(self.restarts),
            "failovers": list(self.failovers),
            "dead": list(self.dead),
            "deadline_exceeded": self.deadline_exceeded,
            "restart_log": [dict(entry) for entry in self.restart_log],
        }


def _sum_numeric(dicts: list) -> dict:
    """Key-wise sum of numeric entries across per-shard stat dicts."""
    merged: dict = {}
    for entry in dicts:
        for key, value in entry.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


class ClusterRouter:
    """Shard-by-fingerprint front-end over N serving workers.

    Use as an async context manager::

        options = ClusterOptions(num_shards=2, cache_dir="/tmp/tier")
        async with ClusterRouter(options) as cluster:
            response = await cluster.submit(problem, method="symgd")
    """

    def __init__(
        self,
        options: ClusterOptions | None = None,
        chaos: FaultPlan | ChaosInjector | None = None,
    ) -> None:
        self.options = options or ClusterOptions()
        server_options = self.options.server
        if self.options.cache_dir is not None:
            from dataclasses import replace

            server_options = replace(
                server_options, cache_dir=self.options.cache_dir
            )
        self._server_options = server_options
        #: Runtime fault injector (one per run); a FaultPlan is instantiated.
        self.chaos: ChaosInjector | None = (
            chaos.injector() if isinstance(chaos, FaultPlan) else chaos
        )
        self.shards: list = []
        self._started = False
        self._closing = False
        self._pending = [0] * self.options.num_shards
        self._peak_pending = [0] * self.options.num_shards
        self._routed = [0] * self.options.num_shards
        self._shed = [0] * self.options.num_shards
        # Supervision state, all indexed by shard: a shard is routable iff
        # neither dead nor terminal.  `dead` flips on at death and off when
        # a restart completes; `terminal` is one-way (budget exhausted or
        # supervision disabled).
        self._dead = [False] * self.options.num_shards
        self._terminal = [False] * self.options.num_shards
        self._restarts = [0] * self.options.num_shards
        self._failovers = [0] * self.options.num_shards
        self._restart_log: list[dict] = []
        self._restart_tasks: dict[int, asyncio.Task] = {}
        self._supervisor_task: asyncio.Task | None = None
        self._deadline_exceeded = 0
        # Append-only session journal: session_id -> {base, method, params,
        # aggressive, deltas}.  Deltas are appended only AFTER the owning
        # shard acknowledged them, so replaying the journal on a restarted
        # shard reconstructs exactly the state the client knows about (an
        # op in flight at crash time fails retryably and re-applies once).
        self._session_journal: dict[str, dict] = {}
        self._session_shard: dict[str, int] = {}
        self._session_counter = 0
        # Bounded LRU of route counts feeding the gossip trigger (see
        # ClusterOptions.hot_count_limit): high-cardinality fingerprint
        # traffic recycles cold entries instead of growing without bound.
        self._hot_counts: OrderedDict[str, int] = OrderedDict()
        self._gossip_tasks: set[asyncio.Task] = set()
        self._gossip_prefetches = 0
        self._request_counter = 0
        self._started_at: float | None = None
        self._finished_at: float | None = None
        self.metrics = MetricsRegistry()
        self.metrics.register_collector(self._collect_metrics)
        if self.chaos is not None:
            self.metrics.register_collector(self.chaos.collect_metrics)
        self._latency_hist = self.metrics.histogram(
            "repro_cluster_request_latency_seconds",
            "Router-side end-to-end request latency (seconds, full run)",
        )

    # -- lifecycle ------------------------------------------------------------

    def _build_shard(self, index: int):
        """One shard transport, with its per-shard hot-set path resolved."""
        shard_options = self._server_options
        if shard_options.hot_set_path is not None:
            from dataclasses import replace

            # Per-shard hot-set files: the resident sets differ by
            # construction (fingerprint sharding), so sharing one file
            # would have the last-drained shard clobber the others.
            shard_options = replace(
                shard_options,
                hot_set_path=f"{shard_options.hot_set_path}.s{index}",
            )
        if self.options.transport == "process":
            return ProcessShard(
                index, shard_options, mp_method=self.options.mp_method
            )
        return InprocShard(index, shard_options)

    def _attach_chaos(self, shard) -> None:
        """Point a (re)started shard at the run's injector.

        In-process shards additionally get the executor/cache hooks wired
        (``solver_error`` and targeted cache corruption); those hooks cannot
        cross a process boundary, so for process shards only the transport
        faults (kill / delay / drop) and directory-level cache corruption
        apply.
        """
        shard.chaos = self.chaos
        if self.chaos is None:
            return
        server = getattr(shard, "server", None)
        if server is not None:
            server.engine.executor.fault_hook = self.chaos.executor_hook
            server.engine.cache.fault_hook = self.chaos.cache_read_hook

    async def start(self) -> "ClusterRouter":
        """Build and start every shard (idempotent); start the supervisor."""
        if self._started:
            return self
        for index in range(self.options.num_shards):
            self.shards.append(self._build_shard(index))
        try:
            await asyncio.gather(*(shard.start() for shard in self.shards))
        except BaseException:
            await asyncio.gather(
                *(shard.stop() for shard in self.shards),
                return_exceptions=True,
            )
            self.shards.clear()
            raise
        for shard in self.shards:
            self._attach_chaos(shard)
        self._started = True
        self._closing = False
        if self.options.supervise:
            self._supervisor_task = asyncio.get_running_loop().create_task(
                self._supervise()
            )
        return self

    async def drain(self) -> None:
        """Wait until every admitted request on every live shard is answered.

        Pending restarts are awaited first (so a shard that died mid-run is
        back -- with its sessions replayed -- before drain returns); dead or
        terminal shards have nothing admitted to wait for.
        """
        if self._gossip_tasks:
            await asyncio.gather(*self._gossip_tasks, return_exceptions=True)
        while self._restart_tasks:
            await asyncio.gather(
                *list(self._restart_tasks.values()), return_exceptions=True
            )
        await asyncio.gather(
            *(
                shard.drain()
                for index, shard in enumerate(self.shards)
                if not self._dead[index] and not self._terminal[index]
            )
        )

    async def stop(self) -> None:
        """Graceful shutdown: drain everything, then tear the shards down."""
        if not self._started or self._closing:
            return
        self._closing = True
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            try:
                await self._supervisor_task
            except (asyncio.CancelledError, Exception):
                pass
            self._supervisor_task = None
        if self._restart_tasks:
            # Let in-flight recoveries finish (bounded by backoff + start
            # cost) rather than cancelling them into a half-built shard.
            await asyncio.gather(
                *list(self._restart_tasks.values()), return_exceptions=True
            )
        if self._gossip_tasks:
            await asyncio.gather(*self._gossip_tasks, return_exceptions=True)
        await asyncio.gather(
            *(
                shard.abort() if (self._dead[i] or self._terminal[i]) else shard.stop()
                for i, shard in enumerate(self.shards)
            ),
            return_exceptions=True,
        )
        self.shards.clear()
        self._started = False

    # -- supervision ----------------------------------------------------------

    async def _supervise(self) -> None:
        """Probe shard health on an interval; escalate unresponsive shards.

        Passive detection (a data-path call raising
        :class:`~repro.cluster.shard.ShardDeadError`) usually wins the race;
        this loop catches the quiet failure modes -- a shard with no traffic,
        or a worker that is alive but wedged (probe timeout).
        """
        try:
            while not self._closing:
                await asyncio.sleep(self.options.health_interval)
                for index, shard in enumerate(self.shards):
                    if self._closing:
                        return
                    if (
                        self._dead[index]
                        or self._terminal[index]
                        or index in self._restart_tasks
                    ):
                        continue
                    try:
                        await asyncio.wait_for(
                            shard.health(), timeout=self.options.health_timeout
                        )
                    except (ShardDeadError, asyncio.TimeoutError):
                        self._note_shard_death(index)
                    except Exception:
                        # App-level probe noise is not death; a worker-side
                        # error rebuilt as a plain ShardError must not kill
                        # a healthy shard.
                        continue
        except asyncio.CancelledError:
            raise

    def _note_shard_death(self, index: int) -> None:
        """Mark a shard dead and kick off its recovery task (once)."""
        if self._dead[index] or self._terminal[index]:
            return
        self._dead[index] = True
        if self._closing:
            return  # stop() aborts dead shards; no recovery mid-shutdown
        task = asyncio.get_running_loop().create_task(
            self._recover_shard(index)
        )
        self._restart_tasks[index] = task
        task.add_done_callback(
            lambda _task, i=index: self._restart_tasks.pop(i, None)
        )

    async def _recover_shard(self, index: int) -> None:
        """Abort the dead shard, then restart it (budget and backoff allowing).

        A successful restart reloads the shard's persisted hot set (the
        fresh server's :meth:`start` promotes it from the shared disk tier)
        and replays every journaled session pinned to the shard, so pinned
        clients resume after a retryable error window instead of losing
        state.
        """
        started = time.perf_counter()
        old = self.shards[index]
        try:
            await old.abort()
        except Exception:  # pragma: no cover - defensive teardown
            pass
        if (
            not self.options.supervise
            or self._restarts[index] >= self.options.max_restarts
        ):
            self._terminal[index] = True
            return
        backoff = min(
            self.options.restart_backoff * (2 ** self._restarts[index]),
            self.options.restart_backoff_max,
        )
        self._restarts[index] += 1
        if backoff > 0:
            await asyncio.sleep(backoff)
        if self._closing:
            return
        shard = self._build_shard(index)
        try:
            await shard.start()
        except Exception:
            self._terminal[index] = True
            try:
                await shard.stop()
            except Exception:  # pragma: no cover - defensive teardown
                pass
            return
        self._attach_chaos(shard)
        self.shards[index] = shard
        replayed = 0
        for session_id, journal in list(self._session_journal.items()):
            if self._session_shard.get(session_id) != index:
                continue
            try:
                await shard.resume_session(
                    self._journal_payload(session_id, journal),
                    session_id=session_id,
                )
                replayed += 1
            except Exception:  # pragma: no cover - replay is best-effort
                pass
        self._dead[index] = False
        self._restart_log.append(
            {
                "shard": index,
                "restart": self._restarts[index],
                "backoff": backoff,
                "duration": time.perf_counter() - started,
                "sessions_replayed": replayed,
            }
        )

    @staticmethod
    def _journal_payload(session_id: str, journal: dict) -> dict:
        """The ServerSession.to_dict wire form, rebuilt from the journal."""
        return {
            "session_id": session_id,
            "base": journal["base"],
            "deltas": list(journal["deltas"]),
            "method": journal["method"],
            "params": dict(journal["params"]),
            "aggressive": journal["aggressive"],
        }

    def _routable(self, index: int) -> bool:
        return not self._dead[index] and not self._terminal[index]

    def _pick_live_shard(self, owner: int, exclude=frozenset()) -> int | None:
        """The owner if routable, else the next live shard ring-wise."""
        n = self.options.num_shards
        for offset in range(n):
            index = (owner + offset) % n
            if index in exclude or not self._routable(index):
                continue
            return index
        return None

    async def _chaos_step(self) -> None:
        """Advance the fault plan one op; execute router-level faults."""
        if self.chaos is None:
            return
        for fault in self.chaos.step():
            if fault.kind == "kill_shard":
                index = fault.shard
                if index is None or not (0 <= index < len(self.shards)):
                    continue
                kill = getattr(self.shards[index], "inject_kill", None)
                if kill is not None:
                    kill()
                self.chaos.record("kill_shard", shard=index)
                # Don't wait for a probe or an unlucky caller: the router
                # just killed it, so start recovery immediately.
                self._note_shard_death(index)
            elif fault.kind == "corrupt_cache":
                cache_dir = self.options.cache_dir
                if cache_dir is None:
                    self.chaos.record(
                        "corrupt_cache", detail="no shared cache_dir"
                    )
                    continue
                self.chaos.corrupt_cache_entry(cache_dir)

    def _check_deadline(self, deadline: float | None) -> None:
        """Shed a request whose deadline is already spent at the router."""
        if deadline is not None and deadline <= 0:
            self._deadline_exceeded += 1
            raise DeadlineExceededError(
                f"deadline expired before dispatch ({deadline:.4f}s left)",
                remaining=deadline,
            )

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def _require_running(self) -> None:
        if not self._started or self._closing:
            raise RuntimeError("ClusterRouter is not running; call start() first")

    # -- routing --------------------------------------------------------------

    def shard_for(self, fingerprint: str) -> int:
        """Deterministic, stable shard index for a fingerprint.

        The leading hex digits of the content-addressed fingerprint modulo
        the shard count: no state, no RNG -- the same request routes to the
        same shard in every process, forever (for a fixed ``num_shards``).
        """
        return int(fingerprint[:_ROUTE_HEX_DIGITS], 16) % self.options.num_shards

    def _admit(self, shard: int) -> None:
        if self._pending[shard] >= self.options.queue_limit:
            self._shed[shard] += 1
            raise ShardBusyError(shard, self.options.retry_after)
        self._note_pending(shard)

    def _note_pending(self, shard: int) -> None:
        self._pending[shard] += 1
        if self._pending[shard] > self._peak_pending[shard]:
            self._peak_pending[shard] = self._pending[shard]

    def _release(self, shard: int) -> None:
        self._pending[shard] -= 1

    def _note_routed(self, shard: int, fingerprint: str) -> None:
        self._routed[shard] += 1
        self._maybe_gossip(shard, fingerprint)

    def _maybe_gossip(self, owner: int, fingerprint: str) -> None:
        threshold = self.options.gossip_threshold
        if threshold < 1 or self.options.num_shards < 2:
            return
        count = self._hot_counts.get(fingerprint, 0) + 1
        self._hot_counts[fingerprint] = count
        self._hot_counts.move_to_end(fingerprint)
        while len(self._hot_counts) > self.options.hot_count_limit:
            self._hot_counts.popitem(last=False)
        if count != threshold:
            return  # fire exactly once per fingerprint, when it turns hot
        for index, shard in enumerate(self.shards):
            if index == owner:
                continue
            task = asyncio.get_running_loop().create_task(
                self._gossip_prefetch(shard, fingerprint)
            )
            self._gossip_tasks.add(task)
            task.add_done_callback(self._gossip_tasks.discard)

    async def _gossip_prefetch(self, shard, fingerprint: str) -> None:
        try:
            if await shard.prefetch(fingerprint):
                self._gossip_prefetches += 1
        except Exception:  # gossip is best-effort; never fail a request path
            pass

    def _stamp_request(self) -> float:
        now = time.perf_counter()
        if self._started_at is None:
            self._started_at = now
        return now

    def _observe(self, arrived: float) -> float:
        finished = time.perf_counter()
        self._finished_at = finished
        latency = finished - arrived
        self._latency_hist.observe(latency)
        return latency

    # -- stateless queries ----------------------------------------------------

    async def submit(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> ClusterResponse:
        """Route one query to its owning shard and await the response.

        Raises :class:`ShardBusyError` (without enqueueing anything) when
        the target shard is at its admission limit, and
        :class:`DeadlineExceededError` when ``deadline`` (a relative budget
        in seconds) is already spent -- both before anything is enqueued.

        When the owning shard is down, the query **fails over** to the next
        live shard: routing only concentrates cache locality, so any shard
        computes the bitwise-identical answer (the response's ``failover``
        flag and the ``repro_cluster_failovers_total`` metric record the
        detour).  A shard dying mid-call surfaces as a retry against the
        next live shard; with no live shard left, a
        :class:`ShardCrashedError` is raised.
        """
        self._require_running()
        await self._chaos_step()
        self._check_deadline(deadline)
        # Build the request up front: validates method/options and yields
        # the content-addressed fingerprint that picks the shard.
        fingerprint = SolveRequest(problem, method, dict(params or {})).fingerprint
        owner = self.shard_for(fingerprint)
        self._request_counter += 1
        if request_id is None:
            request_id = f"c{self._request_counter}"
        arrived = self._stamp_request()
        tried: set[int] = set()
        while True:
            target = self._pick_live_shard(owner, exclude=tried)
            if target is None:
                raise ShardCrashedError(
                    owner,
                    self.options.retry_after,
                    terminal=all(
                        self._terminal[i]
                        for i in range(self.options.num_shards)
                    ),
                )
            self._admit(target)
            try:
                payload = await self.shards[target].submit(
                    problem, method, params,
                    request_id=request_id, deadline=deadline,
                )
            except ShardDeadError:
                # The shard died under this call; mark it (starting its
                # recovery) and retry on the next live shard.  The request
                # never started solving -- reissuing it cannot double-work
                # thanks to coalescing/caching being content-addressed.
                self._note_shard_death(target)
                tried.add(target)
                continue
            finally:
                self._release(target)
            break
        if target != owner:
            self._failovers[owner] += 1
        latency = self._observe(arrived)
        self._note_routed(target, fingerprint)
        return ClusterResponse(
            request_id=request_id,
            shard=target,
            result=payload["result"],
            fingerprint=payload["fingerprint"],
            cache_hit=payload["cache_hit"],
            coalesced=payload["coalesced"],
            latency=latency,
            batch_size=payload["batch_size"],
            served=payload["served"],
            failover=target != owner,
        )

    # -- pinned sessions ------------------------------------------------------

    def session_shard(self, session_id: str) -> int:
        """The shard a session is pinned to (raises for unknown ids)."""
        try:
            return self._session_shard[session_id]
        except KeyError:
            raise ValueError(
                f"unknown cluster session {session_id!r}; open_session() "
                "or resume_session() first"
            ) from None

    def _pin_session(self, shard_index: int) -> str:
        self._session_counter += 1
        session_id = f"s{shard_index}-{self._session_counter}"
        self._session_shard[session_id] = shard_index
        return session_id

    def _session_crash(self, shard_index: int) -> ShardCrashedError:
        return ShardCrashedError(
            shard_index,
            self.options.retry_after,
            terminal=self._terminal[shard_index],
        )

    def _require_session_shard(self, session_id: str) -> int:
        """The session's pinned shard, raising while it is down.

        Session state lives on exactly one shard, so there is no failover:
        while the shard restarts the caller gets a *retryable*
        :class:`ShardCrashedError` (the journal replay restores the session
        before the restart completes), turning terminal only when the
        restart budget is spent.
        """
        shard_index = self.session_shard(session_id)
        if not self._routable(shard_index):
            raise self._session_crash(shard_index)
        return shard_index

    async def open_session(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
        aggressive: bool = False,
    ) -> str:
        """Open an edit session, pinned to the base problem's owning shard.

        Returns a router-assigned id of the form ``s<shard>-<n>`` -- the
        pin is readable right off the id.
        """
        self._require_running()
        await self._chaos_step()
        fingerprint = SolveRequest(problem, method, dict(params or {})).fingerprint
        shard_index = self.shard_for(fingerprint)
        if not self._routable(shard_index):
            raise self._session_crash(shard_index)
        session_id = self._pin_session(shard_index)
        try:
            await self.shards[shard_index].open_session(
                problem, method, params, session_id=session_id,
                aggressive=aggressive,
            )
        except BaseException as error:
            self._session_shard.pop(session_id, None)
            if isinstance(error, ShardDeadError):
                self._note_shard_death(shard_index)
                raise self._session_crash(shard_index) from error
            raise
        # Journal AFTER the shard acknowledged: the journal only ever holds
        # state the shard (and therefore the client) has seen.
        self._session_journal[session_id] = {
            "base": problem.to_dict(),
            "method": method,
            "params": dict(params or {}),
            "aggressive": bool(aggressive),
            "deltas": [],
        }
        return session_id

    async def submit_session(
        self,
        session_id: str,
        deltas=None,
        method: str | None = None,
        params: dict | None = None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> ClusterResponse:
        """Apply edits to a pinned session and solve its head on its shard.

        Session traffic is never shed and never re-routed: the session's
        state lives on exactly one shard, so continuity wins over admission
        (the bound protects shards from stateless floods, which is also why
        this path still counts toward the shard's pending depth -- admission
        sees session load, it just cannot reject it).  While the shard is
        down a retryable :class:`ShardCrashedError` is raised; the delta
        journal appends only on success, so a retried call re-applies its
        edits exactly once against the replayed session.
        """
        self._require_running()
        await self._chaos_step()
        self._check_deadline(deadline)
        shard_index = self._require_session_shard(session_id)
        self._request_counter += 1
        if request_id is None:
            request_id = f"c{self._request_counter}"
        self._note_pending(shard_index)  # visible to admission, not bounded
        arrived = self._stamp_request()
        try:
            payload = await self.shards[shard_index].submit_session(
                session_id, deltas=deltas, method=method, params=params,
                request_id=request_id, deadline=deadline,
            )
        except ShardDeadError as error:
            self._note_shard_death(shard_index)
            raise self._session_crash(shard_index) from error
        finally:
            self._release(shard_index)
        journal = self._session_journal.get(session_id)
        if journal is not None and deltas:
            journal["deltas"].extend(
                delta if isinstance(delta, dict) else delta.to_dict()
                for delta in deltas
            )
        latency = self._observe(arrived)
        self._note_routed(shard_index, payload["fingerprint"])
        return ClusterResponse(
            request_id=request_id,
            shard=shard_index,
            result=payload["result"],
            fingerprint=payload["fingerprint"],
            cache_hit=payload["cache_hit"],
            coalesced=payload["coalesced"],
            latency=latency,
            batch_size=payload["batch_size"],
            served=payload["served"],
            session_id=session_id,
        )

    async def export_session(self, session_id: str) -> dict:
        self._require_running()
        shard_index = self._require_session_shard(session_id)
        try:
            return await self.shards[shard_index].export_session(session_id)
        except ShardDeadError as error:
            self._note_shard_death(shard_index)
            raise self._session_crash(shard_index) from error

    async def resume_session(self, data: dict) -> str:
        """Resume an exported session, re-pinning by its *base* fingerprint.

        The pin recomputes from the session's base problem and method, so a
        session resumed on a restarted cluster lands on the shard that
        served (and cached) its history.
        """
        self._require_running()
        base = RankingProblem.from_dict(data["base"])
        method = data.get("method", "symgd")
        fingerprint = SolveRequest(
            base, method, dict(data.get("params") or {})
        ).fingerprint
        shard_index = self.shard_for(fingerprint)
        if not self._routable(shard_index):
            raise self._session_crash(shard_index)
        session_id = self._pin_session(shard_index)
        payload = dict(data, session_id=session_id)
        try:
            await self.shards[shard_index].resume_session(
                payload, session_id=session_id
            )
        except BaseException as error:
            self._session_shard.pop(session_id, None)
            if isinstance(error, ShardDeadError):
                self._note_shard_death(shard_index)
                raise self._session_crash(shard_index) from error
            raise
        self._session_journal[session_id] = {
            "base": data["base"],
            "method": method,
            "params": dict(data.get("params") or {}),
            "aggressive": bool(data.get("aggressive", False)),
            "deltas": list(data.get("deltas") or []),
        }
        return session_id

    async def close_session(self, session_id: str) -> None:
        self._require_running()
        shard_index = self.session_shard(session_id)
        if self._routable(shard_index):
            try:
                await self.shards[shard_index].close_session(session_id)
            except ShardDeadError:
                # Closing a session on a shard that just died is not an
                # error for the caller: the state is gone either way.  The
                # journal removal below also stops the replay from
                # resurrecting it.
                self._note_shard_death(shard_index)
        self._session_shard.pop(session_id, None)
        self._session_journal.pop(session_id, None)

    async def session_info(self, session_id: str) -> dict:
        self._require_running()
        shard_index = self._require_session_shard(session_id)
        try:
            info = await self.shards[shard_index].session_info(session_id)
        except ShardDeadError as error:
            self._note_shard_death(shard_index)
            raise self._session_crash(shard_index) from error
        info["shard"] = shard_index
        return info

    # -- health / stats / metrics ---------------------------------------------

    async def health(self) -> dict:
        """Per-shard liveness payloads keyed by shard index.

        Dead / terminal / unresponsive shards report ``ok: False`` with the
        supervision state instead of failing the whole call -- this is the
        endpoint an operator (or the supervisor's own tests) reads *during*
        an outage.
        """
        self._require_running()

        async def probe(index: int, shard) -> dict:
            if not self._routable(index):
                return {
                    "ok": False,
                    "dead": True,
                    "terminal": self._terminal[index],
                    "restarts": self._restarts[index],
                }
            try:
                payload = dict(
                    await asyncio.wait_for(
                        shard.health(), timeout=self.options.health_timeout
                    )
                )
            except Exception as error:
                return {"ok": False, "error": str(error)}
            payload["ok"] = True
            payload["restarts"] = self._restarts[index]
            return payload

        payloads = await asyncio.gather(
            *(probe(index, shard) for index, shard in enumerate(self.shards))
        )
        return {
            "shards": self.options.num_shards,
            "transport": self.options.transport,
            "per_shard": {index: payload for index, payload in enumerate(payloads)},
        }

    async def _shard_stats(self, index: int, shard) -> ServiceStats:
        """One shard's stats; a dead shard contributes an empty snapshot."""
        if not self._routable(index):
            return ServiceStats()
        try:
            return await shard.stats()
        except Exception:
            return ServiceStats()

    async def stats(self) -> ClusterStats:
        """Cluster-wide :class:`ClusterStats` (totals + per-shard views)."""
        self._require_running()
        per_shard = list(
            await asyncio.gather(
                *(
                    self._shard_stats(index, shard)
                    for index, shard in enumerate(self.shards)
                )
            )
        )
        hist = self._latency_hist
        requests = sum(stats.requests for stats in per_shard)
        wall = (
            (self._finished_at or 0.0) - (self._started_at or 0.0)
            if self._started_at is not None
            else 0.0
        )
        totals = ServiceStats(
            requests=requests,
            coalesced=sum(stats.coalesced for stats in per_shard),
            cache_hits=sum(stats.cache_hits for stats in per_shard),
            batches=sum(stats.batches for stats in per_shard),
            shed=sum(self._shed),
            solver_invocations=sum(
                stats.solver_invocations for stats in per_shard
            ),
            mean_latency=hist.mean,
            p50_latency=hist.quantile(0.50),
            p95_latency=hist.quantile(0.95),
            p99_latency=hist.quantile(0.99),
            max_latency=hist.max,
            throughput=requests / wall if wall > 0 else 0.0,
            wall_time=wall,
            history_window=sum(stats.history_window for stats in per_shard),
            cache=_sum_numeric([stats.cache for stats in per_shard]),
            sessions_open=sum(stats.sessions_open for stats in per_shard),
            sessions_opened=sum(stats.sessions_opened for stats in per_shard),
            sessions_evicted=sum(
                stats.sessions_evicted for stats in per_shard
            ),
            prewarmed=sum(stats.prewarmed for stats in per_shard),
            deadline_exceeded=self._deadline_exceeded
            + sum(stats.deadline_exceeded for stats in per_shard),
            incremental=_sum_numeric(
                [stats.incremental for stats in per_shard]
            ),
        )
        return ClusterStats(
            shards=self.options.num_shards,
            totals=totals,
            per_shard=per_shard,
            routed=list(self._routed),
            shed=list(self._shed),
            queue_depth=list(self._pending),
            peak_queue_depth=list(self._peak_pending),
            sessions_pinned=len(self._session_shard),
            gossip_prefetches=self._gossip_prefetches,
            hot_keys_tracked=len(self._hot_counts),
            restarts=list(self._restarts),
            failovers=list(self._failovers),
            dead=[not self._routable(i) for i in range(self.options.num_shards)],
            deadline_exceeded=totals.deadline_exceeded,
            restart_log=[dict(entry) for entry in self._restart_log],
        )

    def _collect_metrics(self) -> dict:
        shard_labels = ("shard",)
        return {
            "repro_cluster_shards": (
                "gauge", "Shards in the cluster", self.options.num_shards,
            ),
            "repro_cluster_requests_total": (
                "counter", "Requests routed, by shard",
                {(str(i),): count for i, count in enumerate(self._routed)},
                shard_labels,
            ),
            "repro_cluster_shed_total": (
                "counter", "Requests shed by admission control, by shard",
                {(str(i),): count for i, count in enumerate(self._shed)},
                shard_labels,
            ),
            "repro_cluster_queue_depth": (
                "gauge", "Requests currently pending, by shard",
                {(str(i),): depth for i, depth in enumerate(self._pending)},
                shard_labels,
            ),
            "repro_cluster_peak_queue_depth": (
                "gauge", "Highest pending depth observed, by shard",
                {(str(i),): depth for i, depth in enumerate(self._peak_pending)},
                shard_labels,
            ),
            "repro_cluster_retry_after_seconds": (
                "gauge", "Back-off hint handed to shed callers",
                self.options.retry_after,
            ),
            "repro_cluster_sessions_pinned": (
                "gauge", "Sessions currently pinned to a shard",
                len(self._session_shard),
            ),
            "repro_cluster_gossip_prefetch_total": (
                "counter", "Hot fingerprints prefetched into non-owning shards",
                self._gossip_prefetches,
            ),
            "repro_cluster_hot_keys_tracked": (
                "gauge",
                "Fingerprints currently tracked by the gossip hot-counter",
                len(self._hot_counts),
            ),
            "repro_cluster_restarts_total": (
                "counter", "Supervisor-driven shard restarts, by shard",
                {(str(i),): count for i, count in enumerate(self._restarts)},
                shard_labels,
            ),
            "repro_cluster_failovers_total": (
                "counter",
                "Stateless queries served by a fallback shard, by owner shard",
                {(str(i),): count for i, count in enumerate(self._failovers)},
                shard_labels,
            ),
            "repro_cluster_shards_dead": (
                "gauge", "Shards currently dead or terminal",
                sum(
                    1
                    for i in range(self.options.num_shards)
                    if not self._routable(i)
                ),
            ),
            "repro_cluster_deadline_exceeded_total": (
                "counter",
                "Requests shed router-side because their deadline expired",
                self._deadline_exceeded,
            ),
        }

    async def export_metrics_prometheus(self) -> str:
        """One cluster-wide Prometheus exposition.

        Per-shard samples are summed (:func:`aggregate_prometheus`) and the
        router's own ``repro_cluster_*`` series are appended; the names are
        disjoint, so the concatenation is a valid exposition.
        """
        self._require_running()
        gathered = await asyncio.gather(
            *(
                shard.export_metrics_prometheus()
                for index, shard in enumerate(self.shards)
                if self._routable(index)
            ),
            return_exceptions=True,
        )
        texts = [text for text in gathered if isinstance(text, str)]
        return aggregate_prometheus(texts) + render_prometheus(self.metrics)
