"""Sharded multi-worker serving: router, shard transports, metric merging.

The cluster layer scales :class:`repro.service.QueryServer` horizontally:
a :class:`ClusterRouter` shards queries by problem fingerprint across N
workers (in-process or separate worker processes), pins edit sessions to
their owning shard, sheds load once a shard's admission queue is full
(:class:`ShardBusyError`), shares the content-addressed disk cache tier
across shards, and aggregates per-shard health/stats/Prometheus exports
into one cluster-wide surface.  A supervisor loop detects dead shards
(:class:`ShardDeadError` from the transport, or a health-probe timeout),
restarts them with exponential backoff, replays their journaled sessions,
and fails stateless traffic over to live shards in the meantime
(:class:`ShardCrashedError` when nothing can serve).  Drive it under load
with :mod:`repro.loadgen`; inject deterministic faults with
:mod:`repro.chaos`.
"""

from repro.cluster.metrics import aggregate_prometheus, aggregate_samples
from repro.cluster.router import (
    ClusterOptions,
    ClusterResponse,
    ClusterRouter,
    ClusterStats,
    ShardBusyError,
    ShardCrashedError,
)
from repro.cluster.shard import InprocShard, ProcessShard, ShardDeadError, ShardError

__all__ = [
    "ClusterOptions",
    "ClusterResponse",
    "ClusterRouter",
    "ClusterStats",
    "ShardBusyError",
    "ShardCrashedError",
    "InprocShard",
    "ProcessShard",
    "ShardDeadError",
    "ShardError",
    "aggregate_prometheus",
    "aggregate_samples",
]
