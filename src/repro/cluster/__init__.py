"""Sharded multi-worker serving: router, shard transports, metric merging.

The cluster layer scales :class:`repro.service.QueryServer` horizontally:
a :class:`ClusterRouter` shards queries by problem fingerprint across N
workers (in-process or separate worker processes), pins edit sessions to
their owning shard, sheds load once a shard's admission queue is full
(:class:`ShardBusyError`), shares the content-addressed disk cache tier
across shards, and aggregates per-shard health/stats/Prometheus exports
into one cluster-wide surface.  Drive it under load with
:mod:`repro.loadgen`.
"""

from repro.cluster.metrics import aggregate_prometheus, aggregate_samples
from repro.cluster.router import (
    ClusterOptions,
    ClusterResponse,
    ClusterRouter,
    ClusterStats,
    ShardBusyError,
)
from repro.cluster.shard import InprocShard, ProcessShard, ShardError

__all__ = [
    "ClusterOptions",
    "ClusterResponse",
    "ClusterRouter",
    "ClusterStats",
    "ShardBusyError",
    "InprocShard",
    "ProcessShard",
    "ShardError",
    "aggregate_prometheus",
    "aggregate_samples",
]
