"""Cluster-wide metric aggregation over per-shard Prometheus expositions.

Every shard -- in-process or a separate worker process -- exports its own
:mod:`repro.obs` registry as Prometheus text.  The text format is the
cluster's cross-process aggregation wire: :func:`aggregate_prometheus`
parses each shard's exposition, **sums** samples that share a metric name
and label set, and re-renders one valid exposition, so the cluster-wide
export is a drop-in replacement for a single server's.

Summation is the right merge for everything this system exports:

* counters (``*_total``) are per-shard totals, so the cluster total is the
  sum;
* histograms are summed per ``le`` bucket (cumulative counts add), and
  ``_sum``/``_count`` add, giving the exact merged distribution;
* the exported gauges (open sessions, queue depth) are additive occupancy
  numbers, so their sums are the cluster-wide occupancy.

``# HELP``/``# TYPE`` metadata is taken from the first shard that declares
a family; shards are homogeneous, so declarations never conflict in
practice (a conflicting re-declaration raises).
"""

from __future__ import annotations

import math

from repro.obs.export import parse_prometheus

__all__ = ["aggregate_prometheus", "aggregate_samples"]


def _parse_metadata(text: str) -> tuple[dict, dict, list]:
    """``# HELP`` / ``# TYPE`` lines and family declaration order."""
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    order: list[str] = []
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            helps.setdefault(name, help_text)
        elif line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            if name not in types:
                types[name] = kind.strip()
                order.append(name)
            elif types[name] != kind.strip():
                raise ValueError(
                    f"metric {name!r} declared with conflicting types "
                    f"{types[name]!r} vs {kind.strip()!r} across shards"
                )
    return helps, types, order


def aggregate_samples(texts: list[str]) -> dict:
    """Sum parsed samples across expositions: ``{(name, labels): value}``."""
    merged: dict = {}
    for text in texts:
        for key, value in parse_prometheus(text).items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


def _family_of(sample_name: str, types: dict) -> str:
    """Map a sample name back to its declaring family.

    Histogram samples render as ``<family>_bucket`` / ``_sum`` / ``_count``;
    everything else samples under its own name.
    """
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="' + str(value).replace("\\", r"\\").replace('"', r"\"")
        .replace("\n", r"\n") + '"'
        for name, value in labels
    )
    return "{" + inner + "}"


def _sample_sort_key(sample_name: str, labels: tuple):
    """Deterministic within-family ordering with numeric ``le`` buckets."""
    le = next((value for name, value in labels if name == "le"), None)
    if le is not None:
        bound = math.inf if le == "+Inf" else float(le)
        rest = tuple(pair for pair in labels if pair[0] != "le")
        return (sample_name, rest, 0, bound)
    return (sample_name, labels, 1, 0.0)


def aggregate_prometheus(texts: list[str]) -> str:
    """Merge several Prometheus expositions into one (samples summed).

    The output parses with :func:`repro.obs.export.parse_prometheus` and
    groups each family's samples under a single ``# HELP``/``# TYPE``
    header, buckets ordered by ``le`` -- structurally identical to what one
    server's :func:`~repro.obs.export.render_prometheus` emits.
    """
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    order: list[str] = []
    for text in texts:
        text_helps, text_types, text_order = _parse_metadata(text)
        for name in text_order:
            if name in types:
                if types[name] != text_types[name]:
                    raise ValueError(
                        f"metric {name!r} declared with conflicting types "
                        f"{types[name]!r} vs {text_types[name]!r} across shards"
                    )
            else:
                types[name] = text_types[name]
                order.append(name)
        for name, help_text in text_helps.items():
            helps.setdefault(name, help_text)

    merged = aggregate_samples(texts)
    by_family: dict[str, list] = {}
    for (sample_name, labels), value in merged.items():
        family = _family_of(sample_name, types)
        by_family.setdefault(family, []).append((sample_name, labels, value))

    lines: list[str] = []
    families = sorted(by_family, key=lambda name: (name not in types, name))
    for family in families:
        if family in helps:
            lines.append(f"# HELP {family} {helps[family]}")
        if family in types:
            lines.append(f"# TYPE {family} {types[family]}")
        samples = sorted(
            by_family[family],
            key=lambda item: _sample_sort_key(item[0], item[1]),
        )
        for sample_name, labels, value in samples:
            lines.append(
                f"{sample_name}{_render_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"
