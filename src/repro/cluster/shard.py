"""Shard transports: one serving worker behind a uniform async API.

A *shard* is one full serving stack -- a :class:`~repro.engine.engine.SolveEngine`
plus a :class:`~repro.service.server.QueryServer` core -- owned by the
cluster router.  Two transports implement the same coroutine API, so the
router, the load generator, and the tests are transport-agnostic:

* :class:`InprocShard` -- the server runs on the router's own event loop.
  Zero serialization (results come back as live objects), which is what the
  bitwise-parity tests and the 1-CPU CI box want.
* :class:`ProcessShard` -- the server runs in a separate **worker process**
  (its own interpreter, engine, cache, and metrics registry).  Requests and
  responses travel as wire dicts over a pair of one-directional pipes; the
  worker answers concurrently (each request becomes a task on its loop), so
  coalescing and micro-batching work exactly as in-process.  Results are
  rebuilt with :meth:`SynthesisResult.from_dict`, whose JSON float
  round-trip is exact -- sharded answers stay bitwise-identical to a
  single-server run.

Every shard method that performs work returns the same payload shape::

    {"result": SynthesisResult, "fingerprint": str, "cache_hit": bool,
     "coalesced": bool, "latency": float, "batch_size": int,
     "served": str | None}
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
from dataclasses import asdict

from repro.chaos import ChaosError
from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult
from repro.service.errors import DeadlineExceededError
from repro.service.server import QueryServer, QueryServerOptions, ServiceStats

__all__ = ["InprocShard", "ProcessShard", "ShardDeadError", "ShardError"]


class ShardError(RuntimeError):
    """A worker-side failure that does not map onto a builtin error type."""


class ShardDeadError(ShardError):
    """The shard's worker is gone (process exit, pipe EOF, injected crash).

    Raised parent-side only -- it is the transport's death signal, and the
    one ``ShardError`` subtype the router treats as "mark the shard dead
    and start the restart/failover machinery" (a worker-side application
    error rebuilt as a plain :class:`ShardError` must *not* kill a healthy
    shard).  Marked ``retryable``: a client that sees it raced the crash,
    and the supervised restart makes reissuing worthwhile (the request
    either never reached the worker or died with it -- nothing committed).
    """

    retryable = True


async def _apply_pipe_fault(shard) -> None:
    """Consume one armed chaos pipe fault for this shard, if any.

    ``delay_pipe`` sleeps the injected latency before the call proceeds;
    ``drop_message`` raises a retryable :class:`~repro.chaos.ChaosError`
    without sending anything (the transport-loss stand-in: the shard never
    saw the request, so reissuing it is safe).  Only the data paths
    (``submit`` / ``submit_session``) consult this -- health probes and
    stats must not eat faults armed for real traffic.
    """
    chaos = shard.chaos
    if chaos is None:
        return
    fault = chaos.take_pipe_fault(shard.index)
    if fault is None:
        return
    if fault.kind == "delay_pipe":
        await asyncio.sleep(fault.seconds)
    else:  # drop_message
        raise ChaosError(f"message to shard {shard.index} dropped (injected)")


def _query_response_payload(response) -> dict:
    """Uniform shard payload from a :class:`QueryResponse` (live objects)."""
    return {
        "result": response.result,
        "fingerprint": response.outcome.fingerprint,
        "cache_hit": response.cache_hit,
        "coalesced": response.coalesced,
        "latency": response.latency,
        "batch_size": response.batch_size,
        "served": response.outcome.served,
    }


class InprocShard:
    """A shard sharing the router's process and event loop.

    Supports *simulated* crashes (:meth:`inject_kill`): the shard flips a
    dead flag and every subsequent call raises :class:`ShardDeadError`,
    which exercises the router's detection/restart/failover machinery
    deterministically on a single event loop -- the 1-CPU CI analogue of a
    worker process dying.  Work already in flight completes (the simulation
    is not preemptive); the state loss is real, because a restart builds a
    brand-new server.
    """

    transport = "inproc"

    def __init__(self, index: int, options: QueryServerOptions) -> None:
        self.index = index
        self.server = QueryServer(options=options)
        #: Optional :class:`~repro.chaos.ChaosInjector` (set by the router).
        self.chaos = None
        self._crashed = False

    def _check_alive(self) -> None:
        if self._crashed:
            raise ShardDeadError(f"shard {self.index} crashed (injected)")

    def inject_kill(self) -> None:
        """Simulate a crash: all state is as good as lost (see class doc)."""
        self._crashed = True

    async def start(self) -> None:
        await self.server.start()

    async def stop(self) -> None:
        await self.server.stop()

    async def abort(self) -> None:
        """Tear down without drain semantics (supervisor path, post-crash).

        The replaced server is stopped so its engine/executor release and
        in-flight waiters resolve; its sessions and memory cache die with
        it, exactly like a killed process.
        """
        try:
            await asyncio.wait_for(self.server.stop(), timeout=30)
        except Exception:  # pragma: no cover - defensive teardown
            pass

    async def drain(self) -> None:
        self._check_alive()
        await self.server.drain()

    async def submit(
        self,
        problem,
        method: str,
        params: dict | None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        self._check_alive()
        await _apply_pipe_fault(self)
        response = await self.server.submit(
            problem, method, params, request_id=request_id, deadline=deadline
        )
        self._check_alive()
        return _query_response_payload(response)

    async def open_session(
        self,
        problem,
        method: str,
        params: dict | None,
        session_id: str,
        aggressive: bool = False,
    ) -> str:
        self._check_alive()
        return await self.server.open_session(
            problem, method, params, session_id=session_id, aggressive=aggressive
        )

    async def submit_session(
        self,
        session_id: str,
        deltas=None,
        method: str | None = None,
        params: dict | None = None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        self._check_alive()
        await _apply_pipe_fault(self)
        response = await self.server.submit_session(
            session_id, deltas=deltas, method=method, params=params,
            request_id=request_id, deadline=deadline,
        )
        self._check_alive()
        return _query_response_payload(response)

    async def export_session(self, session_id: str) -> dict:
        self._check_alive()
        return self.server.export_session(session_id)

    async def resume_session(self, data: dict, session_id: str) -> str:
        self._check_alive()
        return await self.server.resume_session(data, session_id=session_id)

    async def close_session(self, session_id: str) -> None:
        self._check_alive()
        self.server.close_session(session_id)

    async def session_info(self, session_id: str) -> dict:
        self._check_alive()
        return self.server.session_info(session_id)

    async def prefetch(self, fingerprint: str) -> bool:
        self._check_alive()
        return self.server.prefetch(fingerprint)

    async def stats(self) -> ServiceStats:
        return self.server.stats()

    async def export_metrics_prometheus(self) -> str:
        return self.server.export_metrics_prometheus()

    async def health(self) -> dict:
        self._check_alive()
        stats = self.server.stats()
        return {
            "pid": os.getpid(),
            "transport": self.transport,
            "requests": stats.requests,
            "sessions_open": stats.sessions_open,
        }


# -- worker-process transport --------------------------------------------------


def _error_payload(error: BaseException) -> dict:
    return {"type": type(error).__name__, "message": str(error)}


_REBUILDABLE_ERRORS = {
    "ValueError": ValueError,
    "KeyError": KeyError,
    "RuntimeError": RuntimeError,
    "TypeError": TypeError,
    # Typed pass-through for the fault-tolerance layer: a deadline shed or
    # an injected chaos fault inside the worker must reach the caller as
    # itself (both are retryable by contract), not as an opaque ShardError.
    "DeadlineExceededError": DeadlineExceededError,
    "ChaosError": ChaosError,
}


def _rebuild_error(payload: dict) -> BaseException:
    kind = _REBUILDABLE_ERRORS.get(payload.get("type", ""))
    message = payload.get("message", "shard worker error")
    if kind is not None:
        return kind(message)
    return ShardError(f"{payload.get('type', 'Error')}: {message}")


async def _worker_handle(server: QueryServer, op: str, payload: dict) -> dict:
    """Dispatch one request inside the worker; returns the wire reply."""
    if op == "submit":
        response = await server.submit(
            RankingProblem.from_dict(payload["problem"]),
            payload["method"],
            payload.get("params"),
            request_id=payload.get("request_id"),
            deadline=payload.get("deadline"),
        )
        reply = response.to_dict()
        reply["served"] = response.outcome.served
        return reply
    if op == "open_session":
        session_id = await server.open_session(
            RankingProblem.from_dict(payload["problem"]),
            payload["method"],
            payload.get("params"),
            session_id=payload["session_id"],
            aggressive=payload.get("aggressive", False),
        )
        return {"session_id": session_id}
    if op == "submit_session":
        response = await server.submit_session(
            payload["session_id"],
            deltas=payload.get("deltas"),
            method=payload.get("method"),
            params=payload.get("params"),
            request_id=payload.get("request_id"),
            deadline=payload.get("deadline"),
        )
        reply = response.to_dict()
        reply["served"] = response.outcome.served
        return reply
    if op == "export_session":
        return server.export_session(payload["session_id"])
    if op == "resume_session":
        session_id = await server.resume_session(
            payload["data"], session_id=payload["session_id"]
        )
        return {"session_id": session_id}
    if op == "close_session":
        server.close_session(payload["session_id"])
        return {}
    if op == "session_info":
        return server.session_info(payload["session_id"])
    if op == "prefetch":
        return {"hit": server.prefetch(payload["fingerprint"])}
    if op == "stats":
        return asdict(server.stats())
    if op == "metrics_prom":
        return {"text": server.export_metrics_prometheus()}
    if op == "drain":
        await server.drain()
        return {}
    if op == "health":
        stats = server.stats()
        return {
            "pid": os.getpid(),
            "transport": "process",
            "requests": stats.requests,
            "sessions_open": stats.sessions_open,
        }
    raise ValueError(f"unknown shard op {op!r}")


async def _worker_serve(request_recv, response_send, options_wire: dict) -> None:
    server = QueryServer(options=QueryServerOptions(**options_wire))
    await server.start()
    loop = asyncio.get_running_loop()
    tasks: set[asyncio.Task] = set()

    async def handle(req_id, op, payload):
        try:
            reply = await _worker_handle(server, op, payload)
        except BaseException as error:  # every failure answers; never drop
            response_send.send((req_id, "error", _error_payload(error)))
            return
        response_send.send((req_id, "ok", reply))

    try:
        while True:
            try:
                # Blocking pipe read off-loop so in-flight solves keep going.
                message = await loop.run_in_executor(None, request_recv.recv)
            except (EOFError, OSError):
                break
            req_id, op, payload = message
            if op == "stop":
                if tasks:
                    await asyncio.gather(*tasks, return_exceptions=True)
                await server.stop()
                response_send.send((req_id, "ok", {}))
                break
            task = loop.create_task(handle(req_id, op, payload))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if server._loop_task is not None:  # stop not reached (EOF path)
            await server.stop()


def _shard_worker_main(request_recv, response_send, options_wire: dict) -> None:
    """Entry point of one worker process (must be importable for spawn)."""
    try:
        asyncio.run(_worker_serve(request_recv, response_send, options_wire))
    finally:
        try:
            response_send.close()
        except OSError:
            pass
        try:
            request_recv.close()
        except OSError:
            pass


class ProcessShard:
    """A shard backed by a separate worker process.

    The parent keeps two one-directional pipes per worker (requests out,
    responses in) so the event-loop sender and the background reader thread
    never share a connection end.  Responses resolve parent-side futures via
    ``call_soon_threadsafe``; a worker that dies mid-request fails every
    pending future loudly instead of hanging its callers.

    Args:
        index: Shard index (used in ids and error messages).
        options: The worker's :class:`QueryServerOptions` (must be
            pickleable -- it is re-built inside the worker).
        mp_method: ``multiprocessing`` start method.  Defaults to ``spawn``:
            the parent runs an event loop and reader threads, which fork
            could copy in a locked state.
    """

    transport = "process"

    def __init__(
        self,
        index: int,
        options: QueryServerOptions,
        mp_method: str = "spawn",
    ) -> None:
        self.index = index
        self.options = options
        self._mp_method = mp_method
        self._process = None
        self._req_send = None
        self._resp_recv = None
        self._reader: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._request_counter = 0
        self._closed = False
        # Set by the reader thread the moment it observes worker EOF --
        # BEFORE it schedules _fail_pending -- so a _call racing the death
        # notification either fails fast here or registers its future in
        # time for _fail_pending to sweep it.  Without the flag, a call
        # issued after the sweep registered a future nobody would ever fail.
        self._worker_dead = False
        #: Optional :class:`~repro.chaos.ChaosInjector` (set by the router).
        self.chaos = None

    async def start(self) -> None:
        ctx = multiprocessing.get_context(self._mp_method)
        req_recv, req_send = ctx.Pipe(duplex=False)
        resp_recv, resp_send = ctx.Pipe(duplex=False)
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(req_recv, resp_send, asdict(self.options)),
            name=f"repro-shard-{self.index}",
            daemon=True,
        )
        self._process.start()
        # The child inherited duplicates of these ends; close the parent's.
        req_recv.close()
        resp_send.close()
        self._req_send = req_send
        self._resp_recv = resp_recv
        self._loop = asyncio.get_running_loop()
        self._reader = threading.Thread(
            target=self._read_responses,
            name=f"repro-shard-{self.index}-reader",
            daemon=True,
        )
        self._reader.start()
        # Handshake: the first reply proves the worker imported and serves.
        await self._call("health", {})

    def _read_responses(self) -> None:
        while True:
            try:
                message = self._resp_recv.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._resolve, *message)
            except RuntimeError:  # loop already closed during teardown
                break
        # Order matters: flip the flag first (plain attribute write, visible
        # to the event-loop thread under the GIL), then sweep.  See the
        # comment on _worker_dead in __init__.
        self._worker_dead = True
        try:
            self._loop.call_soon_threadsafe(
                self._fail_pending,
                ShardDeadError(f"shard {self.index} worker exited"),
            )
        except RuntimeError:
            pass

    def _resolve(self, req_id: int, status: str, payload) -> None:
        future = self._pending.pop(req_id, None)
        if future is None or future.done():
            return
        if status == "ok":
            future.set_result(payload)
        else:
            future.set_exception(_rebuild_error(payload))

    def _fail_pending(self, error: BaseException) -> None:
        while self._pending:
            _, future = self._pending.popitem()
            if not future.done():
                future.set_exception(error)

    async def _call(self, op: str, payload: dict):
        if self._closed or self._req_send is None:
            raise ShardDeadError(f"shard {self.index} is not running")
        if self._worker_dead:
            # The reader already observed EOF: registering a future now
            # would leave it pending forever (the failure sweep has run or
            # is scheduled against the *current* pending map).  Fail fast.
            raise ShardDeadError(f"shard {self.index} worker exited")
        self._request_counter += 1
        req_id = self._request_counter
        future = self._loop.create_future()
        self._pending[req_id] = future
        try:
            self._req_send.send((req_id, op, payload))
        except (OSError, ValueError) as error:
            self._pending.pop(req_id, None)
            raise ShardDeadError(
                f"shard {self.index} pipe is down: {error}"
            ) from error
        return await future

    # -- the shard API over the wire ------------------------------------------

    @staticmethod
    def _wire_response(reply: dict) -> dict:
        return {
            "result": SynthesisResult.from_dict(reply["result"]),
            "fingerprint": reply["fingerprint"],
            "cache_hit": reply["cache_hit"],
            "coalesced": reply["coalesced"],
            "latency": reply["latency"],
            "batch_size": reply["batch_size"],
            "served": reply.get("served"),
        }

    async def submit(
        self,
        problem,
        method: str,
        params: dict | None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        await _apply_pipe_fault(self)
        reply = await self._call(
            "submit",
            {
                "problem": problem.to_dict(),
                "method": method,
                "params": params,
                "request_id": request_id,
                "deadline": deadline,
            },
        )
        return self._wire_response(reply)

    async def open_session(
        self,
        problem,
        method: str,
        params: dict | None,
        session_id: str,
        aggressive: bool = False,
    ) -> str:
        reply = await self._call(
            "open_session",
            {
                "problem": problem.to_dict(),
                "method": method,
                "params": params,
                "session_id": session_id,
                "aggressive": aggressive,
            },
        )
        return reply["session_id"]

    async def submit_session(
        self,
        session_id: str,
        deltas=None,
        method: str | None = None,
        params: dict | None = None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        wire_deltas = None
        if deltas is not None:
            wire_deltas = [
                delta if isinstance(delta, dict) else delta.to_dict()
                for delta in deltas
            ]
        await _apply_pipe_fault(self)
        reply = await self._call(
            "submit_session",
            {
                "session_id": session_id,
                "deltas": wire_deltas,
                "method": method,
                "params": params,
                "request_id": request_id,
                "deadline": deadline,
            },
        )
        return self._wire_response(reply)

    async def export_session(self, session_id: str) -> dict:
        return await self._call("export_session", {"session_id": session_id})

    async def resume_session(self, data: dict, session_id: str) -> str:
        reply = await self._call(
            "resume_session", {"data": data, "session_id": session_id}
        )
        return reply["session_id"]

    async def close_session(self, session_id: str) -> None:
        await self._call("close_session", {"session_id": session_id})

    async def session_info(self, session_id: str) -> dict:
        return await self._call("session_info", {"session_id": session_id})

    async def prefetch(self, fingerprint: str) -> bool:
        reply = await self._call("prefetch", {"fingerprint": fingerprint})
        return reply["hit"]

    async def stats(self) -> ServiceStats:
        return ServiceStats(**await self._call("stats", {}))

    async def export_metrics_prometheus(self) -> str:
        reply = await self._call("metrics_prom", {})
        return reply["text"]

    async def health(self) -> dict:
        return await self._call("health", {})

    async def drain(self) -> None:
        await self._call("drain", {})

    def inject_kill(self) -> None:
        """Kill the worker process outright (chaos hook; SIGKILL, no drain).

        Death propagates exactly like a real crash: the response pipe hits
        EOF, the reader thread flips ``_worker_dead`` and sweeps pending
        futures with :class:`ShardDeadError`.
        """
        process = self._process
        if process is not None and process.is_alive():
            process.kill()

    async def abort(self) -> None:
        """Hard teardown without the stop handshake (supervisor path).

        For a worker that is already dead -- or must be treated as dead --
        there is nothing to drain: kill the process if it still breathes,
        close both pipe ends, reap it, and fail anything still pending.
        Idempotent, and safe to race :meth:`stop`.
        """
        if self._closed:
            return
        self._closed = True
        process = self._process
        if process is not None and process.is_alive():
            process.kill()
        if self._req_send is not None:
            self._req_send.close()
        if process is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: process.join(timeout=10)
            )
        if self._resp_recv is not None:
            self._resp_recv.close()
        self._fail_pending(ShardDeadError(f"shard {self.index} aborted"))

    async def stop(self) -> None:
        if self._closed:
            return
        try:
            await asyncio.wait_for(self._call("stop", {}), timeout=30)
        except (ShardError, asyncio.TimeoutError):
            pass
        self._closed = True
        if self._req_send is not None:
            self._req_send.close()
        process = self._process
        if process is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: process.join(timeout=10)
            )
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        if self._resp_recv is not None:
            self._resp_recv.close()
