"""Async query front-end over the solve engine.

* :mod:`repro.service.server` -- :class:`QueryServer`: coalesces duplicate
  in-flight queries, micro-batches onto a
  :class:`~repro.engine.engine.SolveEngine`, and records per-request
  latency / cache telemetry.
* ``python -m repro.service`` -- a CLI that starts the server in-process,
  fires a configurable burst of how-to-rank queries, and prints the
  throughput / latency / cache report.
"""

from repro.service.server import (
    QueryResponse,
    QueryServer,
    QueryServerOptions,
    RequestRecord,
    ServiceStats,
)

__all__ = [
    "QueryResponse",
    "QueryServer",
    "QueryServerOptions",
    "RequestRecord",
    "ServiceStats",
]
