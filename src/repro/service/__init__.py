"""Async query front-end over the solve engine.

* :mod:`repro.service.server` -- :class:`QueryServer`: coalesces duplicate
  in-flight queries, micro-batches onto a
  :class:`~repro.engine.engine.SolveEngine`, and records per-request
  latency / cache telemetry.
* :mod:`repro.service.errors` / :mod:`repro.service.retry` -- the
  fault-tolerance contract: :class:`DeadlineExceededError` (a request shed
  before solving because its deadline budget ran out) and
  :class:`RetryPolicy` (seeded exponential backoff with deterministic
  jitter over any error carrying a truthy ``retryable`` attribute).
* ``python -m repro.service`` -- a CLI that starts the server in-process,
  fires a configurable burst of how-to-rank queries, and prints the
  throughput / latency / cache report.
"""

from repro.service.errors import DeadlineExceededError
from repro.service.retry import RetryPolicy
from repro.service.server import (
    QueryResponse,
    QueryServer,
    QueryServerOptions,
    RequestRecord,
    ServiceStats,
)

__all__ = [
    "DeadlineExceededError",
    "QueryResponse",
    "QueryServer",
    "QueryServerOptions",
    "RequestRecord",
    "RetryPolicy",
    "ServiceStats",
]
