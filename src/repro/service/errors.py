"""Service-level request errors shared by the server, cluster, and clients.

These live in their own module (rather than ``repro.service.server``) so the
cluster router, the load generator, and the retry policy can import them
without pulling in the whole serving stack -- and so the process-shard wire
layer can rebuild them by name on the parent side of the pipe.
"""

from __future__ import annotations

__all__ = ["DeadlineExceededError"]


class DeadlineExceededError(RuntimeError):
    """The request's deadline expired before solving started.

    Deadlines are enforced *pre-solve only* (router admission, server
    intake, and batch pickup): an expired request is shed without invoking
    any solver, which keeps answers bitwise deterministic -- a solve, once
    started, always runs to completion and produces the same bytes as an
    undeadlined run.  The error is retryable by contract: nothing was
    enqueued or mutated, so the identical call can be reissued (typically
    with a fresh deadline).
    """

    #: Duck-typed retry contract consumed by ``RetryPolicy.retryable``.
    retryable = True

    def __init__(self, message: str, remaining: float = 0.0) -> None:
        super().__init__(message)
        #: Seconds left on the deadline when the request was shed (<= 0).
        self.remaining = remaining
