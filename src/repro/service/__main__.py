"""CLI demo of the query service: ``python -m repro.service``.

Builds a pool of distinct how-to-rank queries over one of the benchmark
datasets, fires them at a :class:`~repro.service.server.QueryServer` as a
concurrent burst (repeating the pool so coalescing and the result cache have
work to do), and prints the throughput / latency / cache report.

With ``--session`` the demo runs the *stateful* path instead: it opens one
edit session, drives a chain of ``scenarios.mutate()`` edits through
:meth:`~repro.service.server.QueryServer.submit_session` (tolerance
tightening, attribute jitter, an undo via session export/resume), and prints
how each step was served -- ``cold`` / ``warm`` / ``exact`` -- plus the
engine's incremental counters.

Observability flags: ``--trace`` turns on end-to-end span tracing,
``--trace-out trace.json`` dumps the slowest trace as a JSON span tree,
``--profile-out workload.jsonl`` records the workload profile (one JSON line
per request), and ``--metrics-prom`` / ``--metrics-json`` print the unified
metrics registry (service + engine + cache counters, latency histogram)
after the run.

With ``--workers N`` the burst runs through a sharded
:class:`~repro.cluster.ClusterRouter` instead of a single server: N worker
shards (``--cluster-transport`` picks in-process cores or separate worker
processes), fingerprint routing, admission control (``--queue-limit``), and
the cluster-wide stats/metrics aggregation.  ``--executor-workers`` caps
each engine's *executor* pool -- a different axis than ``--workers``.

Examples::

    python -m repro.service --dataset nba --queries 24 --distinct 4
    python -m repro.service --backend process --method symgd --json
    python -m repro.service --methods symgd,sampling --method sampling
    python -m repro.service --scenario tied_scores,heavy_tail --queries 12
    python -m repro.service --session --scenario rank_reversal --edits 4
    python -m repro.service --trace --trace-out trace.json --metrics-prom
    python -m repro.service --workers 2 --queries 24 --metrics-prom
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.api.registry import list_methods
from repro.bench.harness import csrankings_problem, nba_problem, synthetic_problem
from repro.core.problem import RankingProblem
from repro.obs import Observability
from repro.service.server import QueryServer, QueryServerOptions


def build_query_pool(
    dataset: str,
    distinct: int,
    num_tuples: int,
    seed: int,
    scenario_families: tuple[str, ...] | None = None,
) -> list[RankingProblem]:
    """Distinct problems over one dataset (varying the ranking length k).

    With ``scenario_families`` set, the pool comes from the
    :mod:`repro.scenarios` workload generator instead: family instances are
    cycled (varying the instance index) until ``distinct`` problems exist,
    so the service burst exercises generated adversarial workloads.
    """
    if scenario_families:
        from repro.scenarios import generate_one

        return [
            generate_one(
                scenario_families[index % len(scenario_families)],
                index // len(scenario_families),
                seed,
            ).problem
            for index in range(distinct)
        ]
    problems = []
    for index in range(distinct):
        k = 3 + index
        if dataset == "nba":
            problems.append(nba_problem(num_tuples=num_tuples, num_attributes=5, k=k))
        elif dataset == "csrankings":
            problems.append(
                csrankings_problem(num_tuples=num_tuples, num_attributes=8, k=k + 2)
            )
        elif dataset == "synthetic":
            problems.append(
                synthetic_problem(
                    "uniform",
                    num_tuples=num_tuples,
                    num_attributes=5,
                    k=k,
                    seed=seed,
                )
            )
        else:
            raise ValueError(f"unknown dataset {dataset!r}")
    return problems


def method_params(args: argparse.Namespace) -> dict:
    """Method options for the burst, from the CLI's tuning flags."""
    if args.method in ("symgd", "symgd_adaptive"):
        return {
            "cell_size": args.cell_size,
            "max_iterations": args.max_iterations,
            "solver_options": {
                "node_limit": args.node_limit,
                "verify": False,
                "warm_start_strategy": "none",
            },
        }
    if args.method == "rankhow":
        # RankHow options are flat (no nested solver_options).
        return {"node_limit": args.node_limit, "verify": False}
    if args.method == "sampling":
        return {"num_samples": args.samples, "seed": args.seed}
    # Remaining methods (baselines, tree) terminate on their registry
    # defaults; tree in particular is capped by the adapter's
    # service-friendly budgets.
    return {}


def server_options(args: argparse.Namespace) -> QueryServerOptions:
    return QueryServerOptions(
        backend=args.backend,
        max_workers=args.executor_workers,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        cache_dir=args.cache_dir,
        allowed_methods=args.allowed_methods,
        cache_policy=args.cache_policy,
        prewarm=args.prewarm,
        hot_set_path=args.hot_set,
        memory_budget_mb=args.memory_budget_mb,
    )


async def run_burst(args: argparse.Namespace) -> tuple[QueryServer, list]:
    problems = build_query_pool(
        args.dataset,
        args.distinct,
        args.tuples,
        args.seed,
        scenario_families=args.scenario_families,
    )
    params = method_params(args)
    server = QueryServer(options=server_options(args), obs=args.obs)
    async with server:
        tasks = [
            server.submit(problems[i % len(problems)], args.method, params)
            for i in range(args.queries)
        ]
        responses = await asyncio.gather(*tasks)
        # Everything is answered; drain still flushes the profile sink so
        # the post-run reports read a complete JSONL.
        await server.drain()
    return server, responses


async def run_cluster_burst(args: argparse.Namespace) -> tuple[object, list]:
    """The same burst, through a sharded cluster front-end."""
    from repro.cluster import ClusterOptions, ClusterRouter

    problems = build_query_pool(
        args.dataset,
        args.distinct,
        args.tuples,
        args.seed,
        scenario_families=args.scenario_families,
    )
    params = method_params(args)
    options = ClusterOptions(
        num_shards=args.workers,
        transport=args.cluster_transport,
        queue_limit=args.queue_limit,
        cache_dir=args.cache_dir,
        server=server_options(args),
    )
    cluster = ClusterRouter(options)
    async with cluster:
        tasks = [
            cluster.submit(problems[i % len(problems)], args.method, params)
            for i in range(args.queries)
        ]
        responses = await asyncio.gather(*tasks)
        await cluster.drain()
        stats = await cluster.stats()
        metrics_text = (
            await cluster.export_metrics_prometheus()
            if args.metrics_prom
            else None
        )
    return (stats, metrics_text), responses


async def run_session_demo(args: argparse.Namespace) -> tuple[QueryServer, list]:
    """Drive one stateful session through an edit-solve-edit chain."""
    from repro.scenarios import mutation_delta

    problems = build_query_pool(
        args.dataset,
        1,
        args.tuples,
        args.seed,
        scenario_families=args.scenario_families,
    )
    base = problems[0]
    params = method_params(args)
    options = QueryServerOptions(
        backend=args.backend,
        max_workers=args.executor_workers,
        cache_dir=args.cache_dir,
        allowed_methods=args.allowed_methods,
        cache_policy=args.cache_policy,
        prewarm=args.prewarm,
        hot_set_path=args.hot_set,
        memory_budget_mb=args.memory_budget_mb,
    )
    server = QueryServer(options=options, obs=args.obs)
    steps = []
    kinds = ("tighten_tolerance", "jitter", "permute", "rescale")
    async with server:
        session_id = await server.open_session(base, args.method, params)
        response = await server.submit_session(session_id)
        steps.append(("base", response))
        head = base
        for index in range(args.edits):
            kind = kinds[index % len(kinds)]
            deltas, applied = mutation_delta(head, kind, seed=args.seed + index)
            for delta in deltas:
                head = delta.apply(head)
            response = await server.submit_session(
                session_id, deltas=[delta.to_dict() for delta in deltas]
            )
            steps.append((applied, response))
        # Undo demo: export the chain, resume it on the same server, and
        # re-solve -- the resumed head dedupes against the cached solve.
        exported = server.export_session(session_id)
        resumed = await server.resume_session(exported, session_id="resumed")
        response = await server.submit_session(resumed)
        steps.append(("resume", response))
    return server, steps


def emit_observability(args: argparse.Namespace, server: QueryServer) -> None:
    """Post-run exports: metrics dumps, slowest-trace JSON, profile close."""
    if args.metrics_prom:
        sys.stdout.write(server.export_metrics_prometheus())
    if args.metrics_json:
        print(server.export_metrics_json(indent=2))
    if args.obs is not None:
        if args.trace_out and args.obs.tracer is not None:
            slowest = args.obs.tracer.slowest_traces(1)
            if slowest:
                with open(args.trace_out, "w", encoding="utf-8") as handle:
                    json.dump(slowest[0], handle, indent=2)
                    handle.write("\n")
                print(f"slowest trace ({slowest[0]['spans']} spans, "
                      f"{slowest[0]['duration'] * 1e3:.1f}ms) -> {args.trace_out}",
                      file=sys.stderr)
        if args.profile_out and args.obs.profile is not None:
            print(f"workload profile ({len(args.obs.profile)} records) -> "
                  f"{args.profile_out}", file=sys.stderr)
        args.obs.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a burst of how-to-rank queries through the query service.",
    )
    parser.add_argument("--dataset", default="nba",
                        choices=("nba", "csrankings", "synthetic"))
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="FAMILY[,FAMILY...]",
        help="serve generated workloads from these repro.scenarios families "
        "instead of a dataset (see repro.scenarios.list_families())",
    )
    parser.add_argument("--queries", type=int, default=24,
                        help="total queries in the burst (default: 24)")
    parser.add_argument("--distinct", type=int, default=4,
                        help="distinct problems; the rest repeat (default: 4)")
    parser.add_argument("--tuples", type=int, default=120,
                        help="relation size per problem (default: 120)")
    parser.add_argument(
        "--method",
        default=None,
        choices=list_methods(),
        help="method to dispatch in the burst "
        "(default: symgd, or the first --methods entry)",
    )
    parser.add_argument(
        "--methods",
        default=None,
        metavar="NAME[,NAME...]",
        help="restrict which registered methods the server exposes "
        "(default: all registered methods)",
    )
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process", "auto"))
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run the burst through a sharded cluster of N "
                        "worker shards instead of a single server")
    parser.add_argument("--cluster-transport", default="inproc",
                        choices=("inproc", "process"),
                        help="shard transport for --workers: in-process "
                        "cores or separate worker processes (default: inproc)")
    parser.add_argument("--queue-limit", type=int, default=32,
                        help="per-shard admission limit for --workers "
                        "(default: 32)")
    parser.add_argument("--executor-workers", type=int, default=None,
                        help="worker cap for each engine's executor pool")
    parser.add_argument("--batch-window", type=float, default=0.005)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--cache-dir", default=None,
                        help="optional on-disk result cache directory")
    parser.add_argument("--cache-policy", default="lru",
                        choices=("lru", "cost"),
                        help="result-cache eviction policy: plain recency "
                        "LRU, or cost x frequency scoring (default: lru)")
    parser.add_argument("--prewarm", action="store_true",
                        help="speculatively solve predicted next session "
                        "edits at idle priority (session path)")
    parser.add_argument("--memory-budget-mb", type=float, default=None,
                        help="data-plane transient-memory budget in MB for "
                        "chunked evaluation (default: library default)")
    parser.add_argument("--hot-set", default=None, metavar="PATH",
                        help="persist the cache's scored hot set to PATH on "
                        "drain/stop and promote it back on startup "
                        "(pairs with --cache-dir)")
    parser.add_argument("--cell-size", type=float, default=0.1)
    parser.add_argument("--max-iterations", type=int, default=10)
    parser.add_argument("--node-limit", type=int, default=300)
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", action="store_true",
                        help="emit the full per-request records as JSON")
    parser.add_argument(
        "--session",
        action="store_true",
        help="run the stateful-session demo (edit-solve-edit chain with a "
        "serialize/resume step) instead of the query burst",
    )
    parser.add_argument("--edits", type=int, default=3,
                        help="edits in the --session chain (default: 3)")
    parser.add_argument("--trace", action="store_true",
                        help="enable end-to-end span tracing for the run")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the slowest trace as a JSON span tree "
                        "(implies --trace)")
    parser.add_argument("--profile-out", default=None, metavar="PATH",
                        help="append the workload profile (one JSON line per "
                        "request) to PATH")
    parser.add_argument("--metrics-prom", action="store_true",
                        help="print the metrics registry in Prometheus text "
                        "format after the run")
    parser.add_argument("--metrics-json", action="store_true",
                        help="print the metrics registry as JSON after the run")
    args = parser.parse_args(argv)

    args.scenario_families = None
    if args.scenario is not None:
        from repro.scenarios import list_families

        families = tuple(
            name.strip() for name in args.scenario.split(",") if name.strip()
        )
        registered = set(list_families(include_heavy=True))
        unknown = [name for name in families if name not in registered]
        if not families or unknown:
            parser.error(
                f"--scenario names unknown families {unknown or '(none given)'}; "
                f"registered: {sorted(registered)}"
            )
        args.scenario_families = families

    args.allowed_methods = None
    if args.methods is not None:
        allowed = tuple(name.strip() for name in args.methods.split(",") if name.strip())
        if not allowed:
            parser.error(
                "--methods must name at least one registered method "
                f"(registered: {sorted(list_methods())})"
            )
        registered = set(list_methods())
        unknown = [name for name in allowed if name not in registered]
        if unknown:
            parser.error(
                f"--methods names unknown method(s) {unknown}; "
                f"registered: {sorted(registered)}"
            )
        if args.method is None:
            # Don't error on the implicit symgd default when the allowlist
            # excludes it; the burst simply uses the first allowed method.
            args.method = allowed[0]
        elif args.method not in allowed:
            parser.error(
                f"--method {args.method!r} is not in the --methods allowlist "
                f"{sorted(allowed)}"
            )
        args.allowed_methods = allowed
    elif args.method is None:
        args.method = "symgd"

    # Tracing / profiling need an explicit bundle; metrics exports work off
    # the server's default metrics-only bundle either way.
    args.obs = None
    if args.trace or args.trace_out or args.profile_out:
        args.obs = Observability.enabled(profile_path=args.profile_out)

    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        if args.session:
            parser.error("--session runs against a single server; the "
                         "cluster path is query-burst only (sessions pin "
                         "via the repro.cluster API)")
        if args.obs is not None:
            parser.error("--trace/--trace-out/--profile-out are per-server "
                         "flags; the cluster path exports aggregated "
                         "metrics via --metrics-prom")
        (stats, metrics_text), responses = asyncio.run(run_cluster_burst(args))
        if args.json:
            payload = {
                "cluster": stats.to_dict(),
                "responses": [
                    {
                        "request_id": response.request_id,
                        "shard": response.shard,
                        "fingerprint": response.fingerprint,
                        "cache_hit": response.cache_hit,
                        "coalesced": response.coalesced,
                        "latency": response.latency,
                        "result": response.result.to_dict(),
                    }
                    for response in responses
                ],
            }
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            print(f"== repro.service cluster burst: {args.queries} x "
                  f"{args.method} over {args.workers} shards "
                  f"({args.cluster_transport} transport) ==")
            print(stats.describe())
        if metrics_text is not None:
            sys.stdout.write(metrics_text)
        return 0

    if args.session:
        server, steps = asyncio.run(run_session_demo(args))
        stats = server.stats()
        incremental = stats.incremental
        if args.json:
            payload = {
                "session_demo": [
                    {"edit": label, **response.to_dict(), "served": response.outcome.served}
                    for label, response in steps
                ],
                "incremental": incremental,
                "sessions_opened": stats.sessions_opened,
            }
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            source = args.scenario or args.dataset
            print(f"== repro.service session demo: {args.edits} edits x "
                  f"{args.method} on {source} ==")
            for label, response in steps:
                result = response.result
                print(f"  {label:>18s}: served={response.outcome.served:<5s} "
                      f"error={result.error} "
                      f"latency={response.latency * 1e3:.1f}ms")
            print(f"  incremental counters: {incremental} | "
                  f"sessions opened: {stats.sessions_opened}")
        emit_observability(args, server)
        return 0

    server, responses = asyncio.run(run_burst(args))
    stats = server.stats()
    if args.json:
        payload = {
            "stats": {
                "requests": stats.requests,
                "coalesced": stats.coalesced,
                "cache_hits": stats.cache_hits,
                "batches": stats.batches,
                "solver_invocations": stats.solver_invocations,
                "mean_latency": stats.mean_latency,
                "p95_latency": stats.p95_latency,
                "throughput": stats.throughput,
                "wall_time": stats.wall_time,
                "cache": stats.cache,
            },
            "responses": [response.to_dict() for response in responses],
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(f"== repro.service burst: {args.queries} x {args.method} "
              f"on {args.dataset} ({args.backend} backend) ==")
        print(stats.describe())
        for response in responses[: args.distinct]:
            result = response.result
            print(f"  {response.request_id}: error={result.error} "
                  f"cache_hit={response.cache_hit} coalesced={response.coalesced} "
                  f"latency={response.latency * 1e3:.1f}ms")
    emit_observability(args, server)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
