"""Async how-to-rank query front-end with coalescing and micro-batching.

:class:`QueryServer` accepts concurrent how-to-rank queries (a ranking
problem plus a method name and options), and turns a bursty stream of them
into efficient work for a :class:`~repro.engine.engine.SolveEngine`:

* **Coalescing** -- a query whose fingerprint matches one already in flight
  attaches to the in-flight future instead of enqueueing new work, so a
  thundering herd of identical queries costs one solve.
* **Micro-batching** -- queued queries are collected for a short window (or
  until the batch is full) and handed to the engine as one batch, which
  dedups them, serves repeats from the result cache, and fans the distinct
  misses out over the executor backend.
* **Telemetry** -- every request is recorded (latency, cache hit, coalesced,
  batch size) and aggregated by :meth:`QueryServer.stats`; full-run latency
  percentiles come from a bounded streaming histogram, counters flow into a
  :class:`~repro.obs.MetricsRegistry` (Prometheus/JSON exports), and with an
  :class:`~repro.obs.Observability` bundle attached every request carries a
  trace from service intake through engine dispatch down to solver pivots,
  plus an append-only workload profile (JSONL) for replay.
* **Stateful sessions** -- the incremental-synthesis path: a session pins a
  base problem server-side, clients ship only :class:`ProblemDelta` edits
  (:meth:`QueryServer.submit_session`), solves run through the engine's
  delta-aware fallback chain, and sessions LRU-evict beyond
  ``max_sessions`` / export+resume via their serialized delta chain.

The server is an in-process asyncio component rather than a network daemon:
the network layer of a production deployment (HTTP, gRPC, ...) would sit in
front of :meth:`QueryServer.submit`, which is exactly the shape of the
``python -m repro.service`` CLI and ``examples/serve_queries.py``.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace

from repro.core.delta import deltas_from_dicts
from repro.core.problem import RankingProblem
from repro.engine.engine import SolveEngine, SolveOutcome, SolveRequest
from repro.engine.policy import predict_next_deltas
from repro.obs import Observability
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NOOP_SPAN, run_in_context
from repro.service.errors import DeadlineExceededError

__all__ = [
    "QueryServerOptions",
    "QueryResponse",
    "RequestRecord",
    "ServerSession",
    "ServiceStats",
    "QueryServer",
]

_SHUTDOWN = object()


@dataclass(frozen=True)
class QueryServerOptions:
    """Tuning knobs of the front-end.

    Attributes:
        backend: Executor backend for the owned engine (``serial`` /
            ``thread`` / ``process`` / ``auto``); ignored when an engine is
            passed in.
        max_workers: Worker cap for the owned engine's executor.
        batch_window: Seconds to keep collecting queries after the first one
            of a batch arrives.  Zero still batches whatever is already
            queued (pure opportunistic batching).
        max_batch: Hard cap on queries per engine batch.
        cache_capacity: LRU capacity of the owned engine's result cache.
        cache_dir: Optional on-disk cache directory of the owned engine.
        history_limit: Per-request telemetry records kept in memory; older
            records are dropped (aggregate counters keep counting), so a
            long-running server does not grow without bound.
        allowed_methods: Registered method names this server is willing to
            serve; ``None`` serves every registered method.  A deployment
            restricts this to keep expensive methods (say ``tree``) off an
            interactive endpoint.
        max_sessions: Stateful edit sessions kept alive concurrently; the
            least recently used session is evicted when the cap is hit (its
            exported delta chain can still be resumed later).
        cache_policy: Eviction policy of the owned engine's cache: ``"lru"``
            (the default recency LRU) or ``"cost"`` (recompute-cost x
            hit-frequency scoring).  Answer-neutral either way.
        prewarm: Enable the background prewarmer: after each session solve,
            predict the analyst's likely next edits from the observed
            delta-kind frequencies and solve them at idle priority, so the
            real edit lands as an exact cache hit.
        prewarm_candidates: Predicted next states solved per session solve.
        hot_set_path: JSON file for hot-set persistence: the resident cache
            set (plus policy scores) is saved on :meth:`drain`/:meth:`stop`
            and promoted back from the disk tier on :meth:`start`, so a
            restart recovers its hit rate without cold traffic.  Requires
            ``cache_dir`` to be useful (promotion reads the disk tier).
        deadline_budget_rate: Optional deadline-to-iteration-budget mapping:
            a request arriving with deadline ``d`` and an explicit
            ``max_iterations`` option gets the option capped at
            ``max(1, int(d * rate))``.  The cap depends only on the deadline
            *value* (never on elapsed time), so the mapped request stays
            deterministic: same deadline, same fingerprint, same answer.
        memory_budget_mb: Data-plane transient-memory budget applied on
            :meth:`start` (see :mod:`repro.core.chunking`); ``None`` keeps
            the process default.  Serialized with the options, so cluster
            process shards inherit the router's budget.
    """

    backend: str = "serial"
    max_workers: int | None = None
    batch_window: float = 0.005
    max_batch: int = 16
    cache_capacity: int = 512
    cache_dir: str | None = None
    history_limit: int = 10000
    allowed_methods: tuple[str, ...] | None = None
    max_sessions: int = 32
    cache_policy: str = "lru"
    prewarm: bool = False
    prewarm_candidates: int = 2
    hot_set_path: str | None = None
    deadline_budget_rate: float | None = None
    memory_budget_mb: float | None = None


@dataclass
class RequestRecord:
    """Telemetry for one served request."""

    request_id: str
    fingerprint: str
    method: str
    error: int
    latency: float
    cache_hit: bool
    coalesced: bool
    batch_size: int


@dataclass
class QueryResponse:
    """What a caller gets back from :meth:`QueryServer.submit`."""

    request_id: str
    outcome: SolveOutcome
    latency: float
    coalesced: bool
    batch_size: int

    @property
    def result(self):
        return self.outcome.result

    @property
    def cache_hit(self) -> bool:
        return self.outcome.cache_hit

    def to_dict(self) -> dict:
        """Wire-format representation (plain JSON types throughout)."""
        return {
            "request_id": self.request_id,
            "fingerprint": self.outcome.fingerprint,
            "cache_hit": self.outcome.cache_hit,
            "coalesced": self.coalesced,
            "latency": self.latency,
            "batch_size": self.batch_size,
            "result": self.outcome.result.to_dict(),
        }


@dataclass
class ServerSession:
    """Server-side state of one interactive edit session.

    The session pins a base problem and accumulates the wire form of every
    applied delta, so it can be exported (:meth:`to_dict`) and resumed on
    another server with identical composed fingerprints -- the resumed
    session dedupes against whatever the original already solved.
    """

    session_id: str
    base: RankingProblem
    problem: RankingProblem
    method: str
    params: dict
    deltas: list = field(default_factory=list)
    last_fingerprint: str | None = None
    edits: int = 0
    solves: int = 0
    aggressive: bool = False

    def to_dict(self) -> dict:
        """Portable wire form: base problem + delta chain + defaults."""
        return {
            "session_id": self.session_id,
            "base": self.base.to_dict(),
            "deltas": list(self.deltas),
            "method": self.method,
            "params": dict(self.params),
            "aggressive": self.aggressive,
        }

    def info(self) -> dict:
        """Lightweight status payload (no problem data)."""
        return {
            "session_id": self.session_id,
            "method": self.method,
            "edits": self.edits,
            "solves": self.solves,
            "num_tuples": self.problem.num_tuples,
            "fingerprint": self.problem.fingerprint(),
        }


@dataclass
class ServiceStats:
    """Aggregate view over every request served so far.

    Counters and the latency distribution (mean/p50/p95/p99/max) cover the
    *whole lifetime* of the server: percentiles come from a bounded
    streaming histogram, not from the retained per-request records.
    ``history_window`` reports how many recent :class:`RequestRecord`
    entries :attr:`QueryServer.records` still holds -- only that
    drill-down view is windowed.

    ``shed`` is always zero for a standalone server: admission control
    lives in the cluster front-end (:class:`repro.cluster.ClusterRouter`),
    whose aggregated stats reuse this class and fill the field in.
    """

    requests: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    batches: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    solver_invocations: int = 0
    mean_latency: float = 0.0
    p50_latency: float = 0.0
    p95_latency: float = 0.0
    p99_latency: float = 0.0
    max_latency: float = 0.0
    throughput: float = 0.0
    wall_time: float = 0.0
    history_window: int = 0
    cache: dict = field(default_factory=dict)
    sessions_open: int = 0
    sessions_opened: int = 0
    sessions_evicted: int = 0
    prewarmed: int = 0
    incremental: dict = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.requests} requests in {self.wall_time:.2f}s "
            f"({self.throughput:.1f} req/s) | "
            f"coalesced={self.coalesced} cache_hits={self.cache_hits} "
            f"shed={self.shed} "
            f"solves={self.solver_invocations} batches={self.batches} | "
            f"latency mean={self.mean_latency * 1e3:.1f}ms "
            f"p50={self.p50_latency * 1e3:.1f}ms "
            f"p95={self.p95_latency * 1e3:.1f}ms "
            f"p99={self.p99_latency * 1e3:.1f}ms (full run; "
            f"record window={self.history_window})"
        )


class QueryServer:
    """Coalescing, micro-batching asyncio front-end over a solve engine.

    Use as an async context manager::

        async with QueryServer(options=QueryServerOptions(backend="process")) as server:
            response = await server.submit(problem, method="symgd")

    Args:
        engine: A shared :class:`SolveEngine`; when ``None`` the server owns
            one built from ``options`` (and closes it on :meth:`stop`).
        options: Front-end tuning knobs.
        obs: Optional :class:`~repro.obs.Observability` bundle shared with
            the engine (tracing + metrics + workload profiling).  When
            omitted, the server adopts the engine's bundle if it has one,
            or builds a metrics-only bundle so :meth:`export_metrics_json`
            / :meth:`export_metrics_prometheus` always work; tracing and
            profiling stay off unless explicitly enabled.
    """

    def __init__(
        self,
        engine: SolveEngine | None = None,
        options: QueryServerOptions | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.options = options or QueryServerOptions()
        self._allowed_methods: frozenset[str] | None = None
        if self.options.allowed_methods is not None:
            # Validate eagerly: a typo in a deployment's method allowlist
            # should fail at server construction, not on the first query.
            from repro.api.registry import get_method

            for name in self.options.allowed_methods:
                get_method(name)
            self._allowed_methods = frozenset(self.options.allowed_methods)
        self._owns_engine = engine is None
        self.engine = engine or SolveEngine(
            backend=self.options.backend,
            max_workers=self.options.max_workers,
            cache_capacity=self.options.cache_capacity,
            cache_dir=self.options.cache_dir,
            cache_policy=self.options.cache_policy,
        )
        self._owns_obs = False
        if obs is not None:
            self.obs = obs
        elif self.engine.obs is not None:
            # A pre-instrumented engine brings its bundle along, so server
            # spans land in the same tracer and exports cover both layers.
            self.obs = self.engine.obs
        else:
            self.obs = Observability(metrics=MetricsRegistry())
            self._owns_obs = True
        self.engine.attach_obs(self.obs)
        if self.obs.metrics is not None:
            self.obs.metrics.register_collector(self._collect_metrics)
            self._latency_hist = self.obs.metrics.histogram(
                "repro_service_request_latency_seconds",
                "End-to-end request latency (seconds, full run)",
            )
        else:
            self._latency_hist = Histogram()
        self._queue: asyncio.Queue | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._inflight_ctx: dict[str, object] = {}
        self._sessions: OrderedDict[str, ServerSession] = OrderedDict()
        self._session_counter = 0
        self._sessions_opened = 0
        self._sessions_evicted = 0
        self._session_tasks: set[asyncio.Task] = set()
        self._prewarm_tasks: set[asyncio.Task] = set()
        self._prewarmed = 0
        self._hot_set_loaded = 0
        # Edit-kind frequencies across every session on this server: the
        # prewarmer's (tiny) workload model, fed by the same delta stream
        # the profile recorder sees.
        self._delta_kind_counts: dict[str, int] = {}
        self._records: deque[RequestRecord] = deque(
            maxlen=max(self.options.history_limit, 1)
        )
        self._batches = 0
        self._total_requests = 0
        self._total_coalesced = 0
        self._total_cache_hits = 0
        self._deadline_exceeded = 0
        self._latency_sum = 0.0
        self._loop_task: asyncio.Task | None = None
        self._closing = False
        self._started_at: float | None = None
        self._finished_at: float | None = None
        self._request_counter = 0

    # -- observability plumbing -----------------------------------------------

    def _tracer(self):
        obs = self.obs
        if obs.tracer is not None and obs.tracer.enabled:
            return obs.tracer
        return None

    def _request_span(self, name: str, **attributes):
        """A request-root span, or the shared no-op span when tracing is off."""
        tracer = self._tracer()
        if tracer is None:
            return NOOP_SPAN
        return tracer.span(name, **attributes)

    def _collect_metrics(self) -> dict:
        """Service counters for the shared registry (sampled at export)."""
        return {
            "repro_service_requests_total": (
                "counter", "Requests served", self._total_requests,
            ),
            "repro_service_coalesced_total": (
                "counter",
                "Requests coalesced onto an in-flight identical solve",
                self._total_coalesced,
            ),
            "repro_service_cache_hits_total": (
                "counter", "Requests served from the result cache",
                self._total_cache_hits,
            ),
            "repro_service_batches_total": (
                "counter", "Engine micro-batches dispatched", self._batches,
            ),
            "repro_service_sessions_open": (
                "gauge", "Stateful edit sessions currently open",
                len(self._sessions),
            ),
            "repro_service_sessions_opened_total": (
                "counter", "Sessions opened", self._sessions_opened,
            ),
            "repro_service_sessions_evicted_total": (
                "counter", "Sessions LRU-evicted", self._sessions_evicted,
            ),
            "repro_service_prewarmed_total": (
                "counter",
                "Predicted next states made cache-resident by the prewarmer",
                self._prewarmed,
            ),
            "repro_service_hot_set_loaded": (
                "gauge",
                "Hot-set entries promoted from disk at startup",
                self._hot_set_loaded,
            ),
            "repro_service_deadline_exceeded_total": (
                "counter",
                "Requests shed because their deadline expired before solving",
                self._deadline_exceeded,
            ),
        }

    def export_metrics_prometheus(self) -> str:
        """Every layer's metrics in Prometheus text exposition format."""
        return self.obs.render_prometheus()

    def export_metrics_json(self, indent: int | None = None) -> str:
        """Every layer's metrics as structured JSON (same registry snapshot)."""
        return self.obs.render_json(indent=indent)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "QueryServer":
        """Start the batching loop (idempotent); reload the saved hot set."""
        if self._loop_task is None:
            if self.options.memory_budget_mb is not None:
                from repro.core import chunking

                chunking.set_memory_budget_mb(self.options.memory_budget_mb)
            self._queue = asyncio.Queue()
            self._closing = False
            self._loop_task = asyncio.get_running_loop().create_task(
                self._batch_loop()
            )
            if self.options.hot_set_path:
                # Promote the previous run's scored hot set from the disk
                # tier back into memory (stats-neutral), so the first
                # requests after a restart hit instead of resolving.
                self._hot_set_loaded = self.engine.cache.load_hot_set(
                    self.options.hot_set_path
                )
        return self

    async def drain(self) -> None:
        """Wait until every admitted request has been answered, then flush.

        Unlike :meth:`stop`, the server keeps serving afterwards: the queue
        is emptied, every in-flight future (query *and* session path)
        resolves, session solve tasks finish, and the workload profile sink
        -- if one is attached -- is flushed to disk so a consumer tailing
        the JSONL sees the drained requests.  The cluster front-end calls
        this per shard on graceful shutdown; the CLI calls it before
        emitting post-run reports.
        """
        while True:
            waiters = (
                list(self._inflight.values())
                + list(self._session_tasks)
                + list(self._prewarm_tasks)
            )
            queue_busy = self._queue is not None and not self._queue.empty()
            if not waiters and not queue_busy:
                break
            if waiters:
                await asyncio.gather(*waiters, return_exceptions=True)
            else:
                # Items are queued but their batch has not been picked up
                # yet; yield to the batching loop and re-check.
                await asyncio.sleep(0)
        if self.obs.profile is not None:
            self.obs.profile.flush()
        if self.options.hot_set_path:
            self.engine.cache.save_hot_set(self.options.hot_set_path)

    def _fail_inflight(self, error: BaseException) -> None:
        """Resolve every pending waiter with ``error`` (never silently drop)."""
        while self._inflight:
            key, future = self._inflight.popitem()
            self._inflight_ctx.pop(key, None)
            if not future.done():
                future.set_exception(error)

    async def stop(self) -> None:
        """Drain the queue, stop the loop, release the owned engine.

        New :meth:`submit` calls are rejected from this point on; queries
        already submitted (even those enqueued while this call races them)
        are still solved before the loop exits.  The workload profile is
        flushed (and closed, when the server built its own bundle) so a
        ``--profile-out`` JSONL is complete once the server is down.
        """
        if self._loop_task is not None:
            assert self._queue is not None
            # Flip the flag before the sentinel: submit() checks it on the
            # same event loop, so nothing can be enqueued behind the sentinel
            # except requests that were already racing -- and those are
            # drained by the batch loop before it exits.
            self._closing = True
            self._queue.put_nowait(_SHUTDOWN)
            try:
                await self._loop_task
            except asyncio.CancelledError:
                # The loop was cancelled out from under us (its waiters were
                # already failed by the loop's own except clause).
                pass
            self._loop_task = None
            self._queue = None
        if self._session_tasks:
            # Session solves run as standalone tasks (not through the batch
            # queue); anything already submitted is still answered.
            await asyncio.gather(*self._session_tasks, return_exceptions=True)
            self._session_tasks.clear()
        if self._prewarm_tasks:
            # Speculative work already dispatched finishes (its results
            # still land in the shared cache tier for the next process).
            await asyncio.gather(*self._prewarm_tasks, return_exceptions=True)
            self._prewarm_tasks.clear()
        # Nothing should be pending at this point; if the loop died early,
        # waiters get a loud error instead of hanging forever.
        self._fail_inflight(RuntimeError("QueryServer stopped"))
        if self.obs.profile is not None:
            self.obs.profile.flush()
        if self.options.hot_set_path:
            self.engine.cache.save_hot_set(self.options.hot_set_path)
        if self._owns_obs:
            self.obs.close()
        if self._owns_engine:
            self.engine.close()

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the front door -------------------------------------------------------

    def _check_deadline(self, deadline: float | None) -> None:
        """Shed a request whose deadline budget is already spent at intake."""
        if deadline is not None and deadline <= 0:
            self._deadline_exceeded += 1
            raise DeadlineExceededError(
                f"deadline expired before solve started ({deadline:.4f}s left)",
                remaining=deadline,
            )

    def _apply_deadline_budget(
        self, request: SolveRequest, deadline: float | None
    ) -> SolveRequest:
        """Map a deadline onto the solver's iteration budget, deterministically.

        Only requests that *explicitly* budget ``max_iterations`` are capped
        (never method defaults), and the cap is a pure function of the
        deadline value -- elapsed time never feeds in, so repeated runs with
        the same deadlines compose the same fingerprints and answers.
        """
        rate = self.options.deadline_budget_rate
        if rate is None or deadline is None:
            return request
        current = request.options.get("max_iterations")
        if not isinstance(current, int):
            return request
        budget = max(1, int(deadline * rate))
        if budget >= current:
            return request
        options = dict(request.options)
        options["max_iterations"] = budget
        return SolveRequest(request.problem, request.method, options)

    async def submit(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> QueryResponse:
        """Submit one how-to-rank query and await its response.

        Identical queries already in flight are coalesced: this call attaches
        to the pending solve instead of enqueueing a duplicate.  With tracing
        on, each request roots a ``service.request`` span; the engine's
        dispatch/task/solver spans nest under the *primary* request's trace
        (exactly once per solve), and a coalesced waiter's span points at it
        via its ``primary_trace`` attribute.

        ``deadline`` is a relative budget in seconds.  Enforcement is
        pre-solve only (intake here, batch pickup in ``_run_batch``): an
        expired request fails with :class:`DeadlineExceededError` before any
        solver work starts, and a request that *does* start always runs to
        completion -- mid-solve aborts would make answers depend on wall
        clock, breaking the bitwise-determinism invariant.
        """
        if self._loop_task is None or self._closing:
            raise RuntimeError("QueryServer is not running; call start() first")
        self._check_method_allowed(method)
        self._check_deadline(deadline)
        assert self._queue is not None
        self._request_counter += 1
        if request_id is None:
            request_id = f"q{self._request_counter}"
        request = self._apply_deadline_budget(
            SolveRequest(problem, method, dict(params or {})), deadline
        )
        key = request.fingerprint

        arrived = time.perf_counter()
        if self._started_at is None:
            self._started_at = arrived

        with self._request_span(
            "service.request",
            request_id=request_id,
            method=method,
            fingerprint=key,
        ) as span:
            future = self._inflight.get(key)
            coalesced = future is not None
            if future is None:
                loop = asyncio.get_running_loop()
                future = loop.create_future()
                self._inflight[key] = future
                ctx = span.context
                self._inflight_ctx[key] = ctx
                deadline_ts = (
                    loop.time() + deadline if deadline is not None else None
                )
                self._queue.put_nowait((key, request, ctx, deadline_ts))
            elif span:
                primary = self._inflight_ctx.get(key)
                span.set_attributes(
                    coalesced=True,
                    primary_trace=primary.trace_id if primary is not None else "",
                )

            outcome, batch_size = await future
            response = self._finalize_response(
                request_id, key, method, outcome, arrived, coalesced, batch_size
            )
            if span:
                span.set_attributes(
                    cache_hit=response.cache_hit,
                    batch_size=batch_size,
                    latency=response.latency,
                )
            return response

    def _finalize_response(
        self,
        request_id: str,
        key: str,
        method: str,
        outcome: SolveOutcome,
        arrived: float,
        coalesced: bool,
        batch_size: int,
        delta_kinds=(),
    ) -> QueryResponse:
        """Shared telemetry + response assembly for query and session paths."""
        if coalesced:
            # Every waiter on a coalesced solve gets a private result copy,
            # matching the cache's and the engine's no-aliasing guarantee.
            outcome = replace(outcome, result=outcome.result.copy())
        finished = time.perf_counter()
        self._finished_at = finished
        latency = finished - arrived
        response = QueryResponse(
            request_id=request_id,
            outcome=outcome,
            latency=latency,
            coalesced=coalesced,
            batch_size=batch_size,
        )
        self._total_requests += 1
        self._total_coalesced += int(coalesced)
        self._total_cache_hits += int(outcome.cache_hit)
        self._latency_sum += latency
        self._latency_hist.observe(latency)
        self._records.append(
            RequestRecord(
                request_id=request_id,
                fingerprint=key,
                method=method,
                error=int(outcome.result.error),
                latency=latency,
                cache_hit=outcome.cache_hit,
                coalesced=coalesced,
                batch_size=batch_size,
            )
        )
        if self.obs.profile is not None:
            reused = outcome.cache_hit or coalesced
            self.obs.profile.record(
                request_id=request_id,
                fingerprint=key,
                method=method,
                latency=latency,
                # Recompute cost: the engine-side wall time behind a real
                # solve; reuse (hit/coalesce) costs (near) nothing.
                cost=0.0 if reused else outcome.wall_time,
                cache_hit=outcome.cache_hit,
                coalesced=coalesced,
                delta_kinds=delta_kinds,
                served=outcome.served,
            )
        return response

    # -- stateful sessions ----------------------------------------------------

    def _check_method_allowed(self, method: str) -> None:
        if self._allowed_methods is not None and method not in self._allowed_methods:
            raise ValueError(
                f"method {method!r} is not served by this endpoint; "
                f"allowed methods: {sorted(self._allowed_methods)}"
            )

    def _session(self, session_id: str) -> ServerSession:
        try:
            session = self._sessions[session_id]
        except KeyError:
            raise ValueError(
                f"unknown (or evicted) session {session_id!r}; open_session() "
                "or resume_session() first"
            ) from None
        self._sessions.move_to_end(session_id)
        return session

    def _register_session(self, session: ServerSession) -> str:
        self._sessions[session.session_id] = session
        self._sessions.move_to_end(session.session_id)
        self._sessions_opened += 1
        while len(self._sessions) > max(self.options.max_sessions, 1):
            self._sessions.popitem(last=False)
            self._sessions_evicted += 1
        return session.session_id

    async def open_session(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
        session_id: str | None = None,
        aggressive: bool = False,
    ) -> str:
        """Open a stateful edit session; returns its id.

        Sessions hold the base problem and every applied delta server-side,
        so subsequent :meth:`submit_session` calls ship only edits.  The
        least recently used session is evicted beyond
        ``options.max_sessions``.
        """
        if self._loop_task is None or self._closing:
            raise RuntimeError("QueryServer is not running; call start() first")
        self._check_method_allowed(method)
        params = dict(params or {})
        # Fail fast on bad method/options, before any state is created.
        SolveRequest(problem, method, dict(params))
        self._session_counter += 1
        session_id = session_id or f"sess{self._session_counter}"
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already open")
        return self._register_session(
            ServerSession(
                session_id=session_id,
                base=problem,
                problem=problem,
                method=method,
                params=params,
                aggressive=aggressive,
            )
        )

    async def submit_session(
        self,
        session_id: str,
        deltas=None,
        method: str | None = None,
        params: dict | None = None,
        request_id: str | None = None,
        deadline: float | None = None,
    ) -> QueryResponse:
        """Apply edits to a session and solve its head incrementally.

        ``deltas`` is a list of :class:`~repro.core.delta.ProblemDelta`
        objects or their wire dicts, applied in order to the session's
        current head.  Delta application is atomic on the event loop, so
        concurrent edits to one session serialize in arrival order; solves
        whose edited problem matches one already in flight coalesce onto it
        (the same in-flight table the query path uses).  The solve itself
        goes through the engine's delta-aware fallback chain -- exact cache
        hit, parent-artifact warm start, cold -- with the session tracking
        the parent fingerprint across calls.

        Failure semantics: invalid input (malformed delta, unknown method or
        option) fails *before* anything is committed -- retrying the same
        call is safe.  A failure in the solve itself happens *after* the
        edits committed (they must: concurrent calls coalesce on the edited
        head's fingerprint), so on a solver-side error re-submit with
        ``deltas=None`` rather than re-sending the deltas;
        :meth:`session_info` reports the head's fingerprint and edit count
        for reconciliation.
        """
        if self._loop_task is None or self._closing:
            raise RuntimeError("QueryServer is not running; call start() first")
        # Intake-only deadline check, BEFORE the session is touched: an
        # expired call must not commit deltas (the client's retry re-sends
        # them, and double-applied edits would corrupt the session head).
        self._check_deadline(deadline)
        session = self._session(session_id)
        solve_method = method or session.method
        self._check_method_allowed(solve_method)
        parsed = deltas_from_dicts(list(deltas or []))
        head = session.problem.apply_delta(parsed) if parsed else session.problem
        # Build (and thereby validate) the request BEFORE committing the
        # edits: a bad method/options pair must fail without advancing the
        # session, or a client retrying the "failed" call would double-apply
        # its deltas.
        request = self._apply_deadline_budget(
            SolveRequest(
                head,
                solve_method,
                dict(params if params is not None else session.params),
            ),
            deadline,
        )
        if parsed:
            session.problem = head
            session.deltas.extend(delta.to_dict() for delta in parsed)
            session.edits += len(parsed)
        key = request.fingerprint
        parent = session.last_fingerprint
        session.last_fingerprint = key
        session.solves += 1

        self._request_counter += 1
        if request_id is None:
            request_id = f"q{self._request_counter}"
        arrived = time.perf_counter()
        if self._started_at is None:
            self._started_at = arrived

        delta_kinds = tuple(delta.kind for delta in parsed)
        for kind in delta_kinds:
            self._delta_kind_counts[kind] = self._delta_kind_counts.get(kind, 0) + 1
        with self._request_span(
            "service.request",
            request_id=request_id,
            method=solve_method,
            fingerprint=key,
            session_id=session_id,
            edits=len(parsed),
        ) as span:
            future = self._inflight.get(key)
            coalesced = future is not None
            if future is None:
                loop = asyncio.get_running_loop()
                future = loop.create_future()
                self._inflight[key] = future
                ctx = span.context
                self._inflight_ctx[key] = ctx
                task = loop.create_task(
                    self._run_session_solve(
                        key, request, parent, session.aggressive, ctx
                    )
                )
                self._session_tasks.add(task)
                task.add_done_callback(self._session_tasks.discard)
            elif span:
                primary = self._inflight_ctx.get(key)
                span.set_attributes(
                    coalesced=True,
                    primary_trace=primary.trace_id if primary is not None else "",
                )

            outcome, batch_size = await future
            if outcome.served is None:
                # The session attached to a query-path (batch) future for the
                # same fingerprint; those outcomes never set `served`, but every
                # session response promises it.
                outcome = replace(outcome, served="coalesced")
            response = self._finalize_response(
                request_id,
                key,
                solve_method,
                outcome,
                arrived,
                coalesced,
                batch_size,
                delta_kinds=delta_kinds,
            )
            if span:
                span.set_attributes(
                    cache_hit=response.cache_hit,
                    served=outcome.served,
                    latency=response.latency,
                )
            # Schedule AFTER the live solve resolved: the prewarmer only
            # ever spends cycles the request path is done with.
            self._maybe_schedule_prewarm(session)
            return response

    # -- background prewarming ------------------------------------------------

    def _maybe_schedule_prewarm(self, session: ServerSession) -> None:
        """Queue speculative solves for the session's likely next edits."""
        if not self.options.prewarm or self._closing:
            return
        candidates = predict_next_deltas(
            session.problem,
            self._delta_kind_counts,
            limit=max(self.options.prewarm_candidates, 0),
        )
        if not candidates:
            return
        task = asyncio.get_running_loop().create_task(
            self._prewarm_worker(
                session.problem,
                session.method,
                dict(session.params),
                candidates,
            )
        )
        self._prewarm_tasks.add(task)
        task.add_done_callback(self._prewarm_tasks.discard)

    async def _prewarm_worker(self, head, method, params, candidates) -> None:
        """Solve predicted next states at idle priority.

        Idle priority means: yield to the event loop between candidates,
        defer while live queries are queued, and skip any state already in
        flight (a real request beat the prediction to it).  Prewarmed
        results go through :meth:`SolveEngine.prewarm` -- the same cold
        solve path a real miss would take, inserted stats-neutrally -- so a
        later session edit that lands on a prewarmed fingerprint is a
        byte-identical exact hit.
        """
        loop = asyncio.get_running_loop()
        for deltas, _kind in candidates:
            if self._closing:
                return
            # Defer to foreground traffic: drain the query queue first.
            while (
                self._queue is not None
                and not self._queue.empty()
                and not self._closing
            ):
                await asyncio.sleep(0.001)
            await asyncio.sleep(0)
            try:
                child = head.apply_delta(list(deltas))
                request = SolveRequest(child, method, dict(params))
            except Exception:
                # Predictions are best-effort; an edit the head cannot take
                # (e.g. no unranked tuples left) is simply skipped.
                continue
            if request.fingerprint in self._inflight:
                continue
            try:
                resident = await loop.run_in_executor(
                    None, self.engine.prewarm, request
                )
            except Exception:  # pragma: no cover - defensive
                continue
            if resident:
                self._prewarmed += 1

    async def _run_session_solve(
        self,
        key: str,
        request: SolveRequest,
        parent: str | None,
        aggressive: bool,
        ctx=None,
    ) -> None:
        loop = asyncio.get_running_loop()
        tracer = self._tracer()
        try:
            # The executor thread does not inherit the request's contextvars;
            # run_in_context re-parents the engine/solver spans under the
            # submitting request span (a no-op when tracing is off).
            outcome = await loop.run_in_executor(
                None,
                lambda: run_in_context(tracer, ctx)(
                    self.engine.solve_incremental,
                    request,
                    parent,
                    aggressive=aggressive,
                ),
            )
        except Exception as error:  # pragma: no cover - defensive
            future = self._inflight.pop(key, None)
            self._inflight_ctx.pop(key, None)
            if future is not None and not future.done():
                future.set_exception(error)
            return
        future = self._inflight.pop(key, None)
        self._inflight_ctx.pop(key, None)
        if future is not None and not future.done():
            future.set_result((outcome, 1))

    def close_session(self, session_id: str) -> None:
        """Drop a session (its exported form can still be resumed later)."""
        if self._sessions.pop(session_id, None) is None:
            raise ValueError(f"unknown session {session_id!r}")

    def export_session(self, session_id: str) -> dict:
        """Portable wire form of a session (base + delta chain)."""
        return self._session(session_id).to_dict()

    async def resume_session(self, data: dict, session_id: str | None = None) -> str:
        """Rebuild a session from :meth:`export_session` output.

        The delta chain replays through ``apply_delta``, so the resumed
        head's composed fingerprint matches the exported session's -- its
        first solve is answered from the cache if this server (or a shared
        cache tier) solved it before.
        """
        if self._loop_task is None or self._closing:
            raise RuntimeError("QueryServer is not running; call start() first")
        method = data.get("method", "symgd")
        self._check_method_allowed(method)
        base = RankingProblem.from_dict(data["base"])
        params = dict(data.get("params") or {})
        SolveRequest(base, method, dict(params))
        deltas = list(data.get("deltas") or [])
        problem = base.apply_delta(deltas_from_dicts(deltas))
        aggressive = bool(data.get("aggressive", False))
        self._session_counter += 1
        session_id = session_id or data.get("session_id") or f"sess{self._session_counter}"
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} already open")
        return self._register_session(
            ServerSession(
                session_id=session_id,
                base=base,
                problem=problem,
                method=method,
                params=params,
                deltas=deltas,
                edits=len(deltas),
                aggressive=aggressive,
            )
        )

    def session_info(self, session_id: str) -> dict:
        """Status payload of one open session."""
        return self._session(session_id).info()

    @property
    def open_sessions(self) -> list[str]:
        """Ids of every open session, least recently used first."""
        return list(self._sessions)

    # -- batching loop --------------------------------------------------------

    async def _batch_loop(self) -> None:
        try:
            await self._batch_loop_inner()
        except BaseException as error:
            # The loop died abnormally (cancellation included): coalesced
            # waiters parked on in-flight futures would otherwise hang
            # forever.  Fail them loudly instead of dropping them.
            self._fail_inflight(
                RuntimeError(f"QueryServer batch loop terminated: {error!r}")
            )
            raise

    async def _batch_loop_inner(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                # Drain requests that raced stop(): anything enqueued before
                # the closing flag flipped must still be answered.
                remainder = []
                while not self._queue.empty():
                    item = self._queue.get_nowait()
                    if item is not _SHUTDOWN:
                        remainder.append(item)
                if remainder:
                    await self._run_batch(remainder)
                break
            batch = [first]
            requeue_shutdown = False
            deadline = loop.time() + max(self.options.batch_window, 0.0)
            while len(batch) < self.options.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window elapsed; still sweep anything already queued.
                    while (
                        len(batch) < self.options.max_batch
                        and not self._queue.empty()
                    ):
                        item = self._queue.get_nowait()
                        if item is _SHUTDOWN:
                            requeue_shutdown = True
                            break
                        batch.append(item)
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if item is _SHUTDOWN:
                    requeue_shutdown = True
                    break
                batch.append(item)
            if requeue_shutdown:
                # Put the sentinel back so the next iteration runs the
                # drain-and-exit path after this batch is served.
                self._queue.put_nowait(_SHUTDOWN)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list) -> None:
        loop = asyncio.get_running_loop()
        # Deadline check at batch pickup: a request whose budget expired
        # while it sat in the queue is shed here, before any solver work --
        # the last pre-solve enforcement point (running solves are never
        # aborted; see submit()).
        now = loop.time()
        live = []
        for key, request, ctx, deadline_ts in batch:
            if deadline_ts is not None and now >= deadline_ts:
                self._deadline_exceeded += 1
                future = self._inflight.pop(key, None)
                self._inflight_ctx.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(
                        DeadlineExceededError(
                            "deadline expired while queued",
                            remaining=deadline_ts - now,
                        )
                    )
                continue
            live.append((key, request, ctx))
        if not live:
            return
        batch = live
        keys = [key for key, _, _ in batch]
        requests = [request for _, request, _ in batch]
        contexts = [ctx for _, _, ctx in batch]
        self._batches += 1
        try:
            outcomes = await loop.run_in_executor(
                None, lambda: self.engine.solve_batch(requests, contexts)
            )
        except Exception as error:  # pragma: no cover - defensive
            for key in keys:
                future = self._inflight.pop(key, None)
                self._inflight_ctx.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(error)
            return
        for key, outcome in zip(keys, outcomes):
            future = self._inflight.pop(key, None)
            self._inflight_ctx.pop(key, None)
            if future is not None and not future.done():
                future.set_result((outcome, len(batch)))

    # -- cache tier plumbing --------------------------------------------------

    def prefetch(self, fingerprint: str) -> bool:
        """Pull a fingerprint into the in-memory result cache, if possible.

        Promotes an entry from the shared disk tier (when one is
        configured) into this server's LRU so a near-future request for the
        same fingerprint is a memory hit.  The cluster router's hot-key
        gossip calls this on the non-owning shards of a hot fingerprint.

        The promotion is **stats-neutral** (``promotions`` counter, never
        hits/misses): gossip volume scales with the cluster topology, not
        with the query stream, so routing it through ``cache.get`` would
        inflate the hit-rate signal the adaptive policy (and any operator
        reading the dashboards) depends on.  Returns whether the entry is
        now resident.
        """
        return self.engine.cache.promote(fingerprint)

    # -- telemetry ------------------------------------------------------------

    @property
    def records(self) -> list[RequestRecord]:
        """Per-request telemetry (the most recent ``history_limit`` requests)."""
        return list(self._records)

    def stats(self) -> ServiceStats:
        """Aggregate latency / hit-rate / throughput.

        Counters *and* latency percentiles cover the whole lifetime of the
        server: the percentiles come from a bounded streaming histogram
        (exact to one log-spaced bucket), not from the windowed per-request
        records.  ``history_window`` reports how many recent records
        :attr:`records` retains for drill-down.
        """
        if not self._total_requests:
            return ServiceStats(
                deadline_exceeded=self._deadline_exceeded,
                history_window=len(self._records),
                cache=self.engine.cache.stats.as_dict(),
                sessions_open=len(self._sessions),
                sessions_opened=self._sessions_opened,
                sessions_evicted=self._sessions_evicted,
                prewarmed=self._prewarmed,
                incremental=self.engine.incremental_stats.as_dict(),
            )
        hist = self._latency_hist
        wall = (
            (self._finished_at or 0.0) - (self._started_at or 0.0)
            if self._started_at is not None
            else 0.0
        )
        return ServiceStats(
            requests=self._total_requests,
            coalesced=self._total_coalesced,
            cache_hits=self._total_cache_hits,
            batches=self._batches,
            deadline_exceeded=self._deadline_exceeded,
            solver_invocations=self.engine.solver_invocations,
            mean_latency=self._latency_sum / self._total_requests,
            p50_latency=hist.quantile(0.50),
            p95_latency=hist.quantile(0.95),
            p99_latency=hist.quantile(0.99),
            max_latency=hist.max,
            throughput=self._total_requests / wall if wall > 0 else 0.0,
            wall_time=wall,
            history_window=len(self._records),
            cache=self.engine.cache.stats.as_dict(),
            sessions_open=len(self._sessions),
            sessions_opened=self._sessions_opened,
            sessions_evicted=self._sessions_evicted,
            prewarmed=self._prewarmed,
            incremental=self.engine.incremental_stats.as_dict(),
        )
