"""Async how-to-rank query front-end with coalescing and micro-batching.

:class:`QueryServer` accepts concurrent how-to-rank queries (a ranking
problem plus a method name and options), and turns a bursty stream of them
into efficient work for a :class:`~repro.engine.engine.SolveEngine`:

* **Coalescing** -- a query whose fingerprint matches one already in flight
  attaches to the in-flight future instead of enqueueing new work, so a
  thundering herd of identical queries costs one solve.
* **Micro-batching** -- queued queries are collected for a short window (or
  until the batch is full) and handed to the engine as one batch, which
  dedups them, serves repeats from the result cache, and fans the distinct
  misses out over the executor backend.
* **Telemetry** -- every request is recorded (latency, cache hit, coalesced,
  batch size) and aggregated by :meth:`QueryServer.stats`.

The server is an in-process asyncio component rather than a network daemon:
the network layer of a production deployment (HTTP, gRPC, ...) would sit in
front of :meth:`QueryServer.submit`, which is exactly the shape of the
``python -m repro.service`` CLI and ``examples/serve_queries.py``.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.problem import RankingProblem
from repro.engine.engine import SolveEngine, SolveOutcome, SolveRequest

__all__ = [
    "QueryServerOptions",
    "QueryResponse",
    "RequestRecord",
    "ServiceStats",
    "QueryServer",
]

_SHUTDOWN = object()


@dataclass(frozen=True)
class QueryServerOptions:
    """Tuning knobs of the front-end.

    Attributes:
        backend: Executor backend for the owned engine (``serial`` /
            ``thread`` / ``process`` / ``auto``); ignored when an engine is
            passed in.
        max_workers: Worker cap for the owned engine's executor.
        batch_window: Seconds to keep collecting queries after the first one
            of a batch arrives.  Zero still batches whatever is already
            queued (pure opportunistic batching).
        max_batch: Hard cap on queries per engine batch.
        cache_capacity: LRU capacity of the owned engine's result cache.
        cache_dir: Optional on-disk cache directory of the owned engine.
        history_limit: Per-request telemetry records kept in memory; older
            records are dropped (aggregate counters keep counting), so a
            long-running server does not grow without bound.
        allowed_methods: Registered method names this server is willing to
            serve; ``None`` serves every registered method.  A deployment
            restricts this to keep expensive methods (say ``tree``) off an
            interactive endpoint.
    """

    backend: str = "serial"
    max_workers: int | None = None
    batch_window: float = 0.005
    max_batch: int = 16
    cache_capacity: int = 512
    cache_dir: str | None = None
    history_limit: int = 10000
    allowed_methods: tuple[str, ...] | None = None


@dataclass
class RequestRecord:
    """Telemetry for one served request."""

    request_id: str
    fingerprint: str
    method: str
    error: int
    latency: float
    cache_hit: bool
    coalesced: bool
    batch_size: int


@dataclass
class QueryResponse:
    """What a caller gets back from :meth:`QueryServer.submit`."""

    request_id: str
    outcome: SolveOutcome
    latency: float
    coalesced: bool
    batch_size: int

    @property
    def result(self):
        return self.outcome.result

    @property
    def cache_hit(self) -> bool:
        return self.outcome.cache_hit

    def to_dict(self) -> dict:
        """Wire-format representation (plain JSON types throughout)."""
        return {
            "request_id": self.request_id,
            "fingerprint": self.outcome.fingerprint,
            "cache_hit": self.outcome.cache_hit,
            "coalesced": self.coalesced,
            "latency": self.latency,
            "batch_size": self.batch_size,
            "result": self.outcome.result.to_dict(),
        }


@dataclass
class ServiceStats:
    """Aggregate view over every request served so far."""

    requests: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    batches: int = 0
    solver_invocations: int = 0
    mean_latency: float = 0.0
    p95_latency: float = 0.0
    max_latency: float = 0.0
    throughput: float = 0.0
    wall_time: float = 0.0
    cache: dict = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.requests} requests in {self.wall_time:.2f}s "
            f"({self.throughput:.1f} req/s) | "
            f"coalesced={self.coalesced} cache_hits={self.cache_hits} "
            f"solves={self.solver_invocations} batches={self.batches} | "
            f"latency mean={self.mean_latency * 1e3:.1f}ms "
            f"p95={self.p95_latency * 1e3:.1f}ms"
        )


class QueryServer:
    """Coalescing, micro-batching asyncio front-end over a solve engine.

    Use as an async context manager::

        async with QueryServer(options=QueryServerOptions(backend="process")) as server:
            response = await server.submit(problem, method="symgd")

    Args:
        engine: A shared :class:`SolveEngine`; when ``None`` the server owns
            one built from ``options`` (and closes it on :meth:`stop`).
        options: Front-end tuning knobs.
    """

    def __init__(
        self,
        engine: SolveEngine | None = None,
        options: QueryServerOptions | None = None,
    ) -> None:
        self.options = options or QueryServerOptions()
        self._allowed_methods: frozenset[str] | None = None
        if self.options.allowed_methods is not None:
            # Validate eagerly: a typo in a deployment's method allowlist
            # should fail at server construction, not on the first query.
            from repro.api.registry import get_method

            for name in self.options.allowed_methods:
                get_method(name)
            self._allowed_methods = frozenset(self.options.allowed_methods)
        self._owns_engine = engine is None
        self.engine = engine or SolveEngine(
            backend=self.options.backend,
            max_workers=self.options.max_workers,
            cache_capacity=self.options.cache_capacity,
            cache_dir=self.options.cache_dir,
        )
        self._queue: asyncio.Queue | None = None
        self._inflight: dict[str, asyncio.Future] = {}
        self._records: deque[RequestRecord] = deque(
            maxlen=max(self.options.history_limit, 1)
        )
        self._batches = 0
        self._total_requests = 0
        self._total_coalesced = 0
        self._total_cache_hits = 0
        self._latency_sum = 0.0
        self._loop_task: asyncio.Task | None = None
        self._closing = False
        self._started_at: float | None = None
        self._finished_at: float | None = None
        self._request_counter = 0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "QueryServer":
        """Start the batching loop (idempotent)."""
        if self._loop_task is None:
            self._queue = asyncio.Queue()
            self._closing = False
            self._loop_task = asyncio.get_running_loop().create_task(
                self._batch_loop()
            )
        return self

    async def stop(self) -> None:
        """Drain the queue, stop the loop, release the owned engine.

        New :meth:`submit` calls are rejected from this point on; queries
        already submitted (even those enqueued while this call races them)
        are still solved before the loop exits.
        """
        if self._loop_task is not None:
            assert self._queue is not None
            # Flip the flag before the sentinel: submit() checks it on the
            # same event loop, so nothing can be enqueued behind the sentinel
            # except requests that were already racing -- and those are
            # drained by the batch loop before it exits.
            self._closing = True
            self._queue.put_nowait(_SHUTDOWN)
            await self._loop_task
            self._loop_task = None
            self._queue = None
        if self._owns_engine:
            self.engine.close()

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- the front door -------------------------------------------------------

    async def submit(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
        request_id: str | None = None,
    ) -> QueryResponse:
        """Submit one how-to-rank query and await its response.

        Identical queries already in flight are coalesced: this call attaches
        to the pending solve instead of enqueueing a duplicate.
        """
        if self._loop_task is None or self._closing:
            raise RuntimeError("QueryServer is not running; call start() first")
        if self._allowed_methods is not None and method not in self._allowed_methods:
            raise ValueError(
                f"method {method!r} is not served by this endpoint; "
                f"allowed methods: {sorted(self._allowed_methods)}"
            )
        assert self._queue is not None
        self._request_counter += 1
        if request_id is None:
            request_id = f"q{self._request_counter}"
        request = SolveRequest(problem, method, dict(params or {}))
        key = request.fingerprint

        arrived = time.perf_counter()
        if self._started_at is None:
            self._started_at = arrived

        future = self._inflight.get(key)
        coalesced = future is not None
        if future is None:
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self._queue.put_nowait((key, request))

        outcome, batch_size = await future
        if coalesced:
            # Every waiter on a coalesced solve gets a private result copy,
            # matching the cache's and the engine's no-aliasing guarantee.
            outcome = replace(outcome, result=outcome.result.copy())
        finished = time.perf_counter()
        self._finished_at = finished
        latency = finished - arrived
        response = QueryResponse(
            request_id=request_id,
            outcome=outcome,
            latency=latency,
            coalesced=coalesced,
            batch_size=batch_size,
        )
        self._total_requests += 1
        self._total_coalesced += int(coalesced)
        self._total_cache_hits += int(outcome.cache_hit)
        self._latency_sum += latency
        self._records.append(
            RequestRecord(
                request_id=request_id,
                fingerprint=key,
                method=method,
                error=int(outcome.result.error),
                latency=latency,
                cache_hit=outcome.cache_hit,
                coalesced=coalesced,
                batch_size=batch_size,
            )
        )
        return response

    # -- batching loop --------------------------------------------------------

    async def _batch_loop(self) -> None:
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                # Drain requests that raced stop(): anything enqueued before
                # the closing flag flipped must still be answered.
                remainder = []
                while not self._queue.empty():
                    item = self._queue.get_nowait()
                    if item is not _SHUTDOWN:
                        remainder.append(item)
                if remainder:
                    await self._run_batch(remainder)
                break
            batch = [first]
            requeue_shutdown = False
            deadline = loop.time() + max(self.options.batch_window, 0.0)
            while len(batch) < self.options.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    # Window elapsed; still sweep anything already queued.
                    while (
                        len(batch) < self.options.max_batch
                        and not self._queue.empty()
                    ):
                        item = self._queue.get_nowait()
                        if item is _SHUTDOWN:
                            requeue_shutdown = True
                            break
                        batch.append(item)
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if item is _SHUTDOWN:
                    requeue_shutdown = True
                    break
                batch.append(item)
            if requeue_shutdown:
                # Put the sentinel back so the next iteration runs the
                # drain-and-exit path after this batch is served.
                self._queue.put_nowait(_SHUTDOWN)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list) -> None:
        keys = [key for key, _ in batch]
        requests = [request for _, request in batch]
        self._batches += 1
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                None, self.engine.solve_batch, requests
            )
        except Exception as error:  # pragma: no cover - defensive
            for key in keys:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(error)
            return
        for key, outcome in zip(keys, outcomes):
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result((outcome, len(batch)))

    # -- telemetry ------------------------------------------------------------

    @property
    def records(self) -> list[RequestRecord]:
        """Per-request telemetry (the most recent ``history_limit`` requests)."""
        return list(self._records)

    def stats(self) -> ServiceStats:
        """Aggregate latency / hit-rate / throughput.

        Counters (requests, coalesced, cache hits, batches) cover the whole
        lifetime of the server; the latency percentiles cover the retained
        record window (:attr:`QueryServerOptions.history_limit`).
        """
        if not self._total_requests:
            return ServiceStats(cache=self.engine.cache.stats.as_dict())
        latencies = np.asarray([r.latency for r in self._records], dtype=float)
        wall = (
            (self._finished_at or 0.0) - (self._started_at or 0.0)
            if self._started_at is not None
            else 0.0
        )
        return ServiceStats(
            requests=self._total_requests,
            coalesced=self._total_coalesced,
            cache_hits=self._total_cache_hits,
            batches=self._batches,
            solver_invocations=self.engine.solver_invocations,
            mean_latency=self._latency_sum / self._total_requests,
            p95_latency=float(np.percentile(latencies, 95)),
            max_latency=float(latencies.max()),
            throughput=self._total_requests / wall if wall > 0 else 0.0,
            wall_time=wall,
            cache=self.engine.cache.stats.as_dict(),
        )
