"""Seeded client-side retry policy: exponential backoff, deterministic jitter.

:class:`RetryPolicy` decides *whether* an error is worth retrying and *how
long* to back off before each attempt; the caller does the sleeping (sync
``time.sleep`` or ``await asyncio.sleep`` both work), so the policy itself
stays a pure value object.

Retryability is duck-typed: any exception carrying a truthy ``retryable``
attribute qualifies.  The serving stack marks its transient failures that
way -- :class:`~repro.cluster.ShardBusyError` (admission backpressure),
:class:`~repro.cluster.ShardCrashedError` (shard down, restart pending),
:class:`~repro.service.DeadlineExceededError` (shed pre-solve), and
:class:`~repro.chaos.ChaosError` (injected transient fault) -- which keeps
this module free of imports from the cluster layer (no cycle) and lets any
future error type opt in without touching the policy.

Jitter is **deterministic**: the delay for attempt ``k`` of retry key ``K``
comes from :func:`repro.data.rng.derive_rng` seeded with
``(seed, "retry", *K, k)``, so two runs of the same seeded load plan back
off identically -- retries stay inside the reproducibility envelope the
rest of the harness guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.rng import derive_rng

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries transient serving failures.

    Attributes:
        max_retries: Attempts after the first (0 disables retrying).
        base_backoff: Delay before the first retry, seconds.
        factor: Exponential growth per attempt.
        max_backoff: Ceiling on any single delay, seconds.
        jitter: Fraction of the raw delay randomized away (0 = none,
            0.5 = each delay uniform in ``[0.5 * raw, raw]``).  Jitter is
            subtractive so ``max_backoff`` stays a hard ceiling.
        seed: Master seed of the jitter streams (see module docstring).
    """

    max_retries: int = 8
    base_backoff: float = 0.01
    factor: float = 2.0
    max_backoff: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is a transient failure worth reissuing.

        Duck-typed on the exception's ``retryable`` attribute; anything
        else (a genuine bug, bad input, a terminal crash) propagates.
        """
        return bool(getattr(error, "retryable", False))

    def backoff(self, attempt: int, key: tuple = ()) -> float:
        """Delay in seconds before retry ``attempt`` (0-based) of ``key``.

        ``key`` identifies the logical operation being retried (say
        ``(lane, index)`` or a fingerprint); distinct keys get independent
        jitter streams, so a thundering herd of same-plan lanes still
        de-synchronizes -- deterministically.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        raw = min(self.base_backoff * self.factor**attempt, self.max_backoff)
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        rng = derive_rng(self.seed, "retry", *key, attempt)
        return raw * (1.0 - self.jitter * float(rng.random()))
