"""Symbolic gradient descent (Section IV, Algorithms 1 and 2).

SYM-GD starts from a seed weight vector and repeatedly solves the *exact*
RankHow MILP restricted to a small cell around the current point -- "gradient
descent on steroids": each step lands on the true optimum of the cell rather
than on a point a little further down a gradient (the position error is not
even differentiable).  When the error stops improving, either the descent has
converged to a local optimum of the cell size (Algorithm 1) or, in the
adaptive variant, the cell doubles in size and the descent continues until the
time budget is exhausted (Algorithm 2).

The key scalability property the paper exploits is built into the formulation
layer: inside a small cell most indicator hyperplanes do not cross the cell,
so most binaries are fixed by the dominance analysis and the per-cell MILP is
close to a plain LP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.cells import cell_around
from repro.core.metrics import position_error
from repro.core.problem import RankingProblem
from repro.core.rankhow import RankHow, RankHowOptions
from repro.core.result import SynthesisResult
from repro.core.scoring import induced_ranks
from repro.obs.trace import span as obs_span
from repro.core.seeds import get_seed_strategy
from repro.data.rng import as_generator

__all__ = ["SymGDOptions", "SymGD", "default_seed_points"]


@dataclass
class SymGDOptions:
    """Configuration of SYM-GD.

    Attributes:
        cell_size: Side length ``c`` of the local cell (Algorithm 1), or the
            *initial* cell size in adaptive mode (Algorithm 2).  The paper's
            defaults are 0.1 for the approximation study and 1e-4 as the
            adaptive starting size.
        adaptive: Use Algorithm 2 (double the cell when stuck) instead of
            Algorithm 1 (fixed cell, stop when stuck).
        time_limit: Total wall-clock budget ``t_total`` in seconds.
        max_iterations: Safety cap on the number of local solves.
        seed_strategy: ``"ordinal_regression"`` (default), ``"linear_regression"``,
            ``"grid"`` or ``"uniform"``; ignored when ``seed_point`` is given.
        seed_point: Explicit seed weight vector ``W0``.
        solver_options: Options for the per-cell exact solves; the per-cell
            node limit defaults to a modest value because cells are small.
        max_cell_size: Upper limit for the adaptive doubling (< 2).
    """

    cell_size: float = 0.1
    adaptive: bool = False
    time_limit: float | None = None
    max_iterations: int = 50
    seed_strategy: str = "ordinal_regression"
    seed_point: np.ndarray | None = None
    solver_options: RankHowOptions = field(
        default_factory=lambda: RankHowOptions(node_limit=2000, verify=False)
    )
    max_cell_size: float = 1.9

    def to_dict(self) -> dict:
        """Canonical JSON-serializable representation (for fingerprinting)."""
        return {
            "cell_size": float(self.cell_size),
            "adaptive": bool(self.adaptive),
            "time_limit": None if self.time_limit is None else float(self.time_limit),
            "max_iterations": int(self.max_iterations),
            "seed_strategy": self.seed_strategy,
            "seed_point": (
                None
                if self.seed_point is None
                else [float(w) for w in np.asarray(self.seed_point, dtype=float)]
            ),
            "solver_options": self.solver_options.to_dict(),
            "max_cell_size": float(self.max_cell_size),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SymGDOptions":
        seed_point = data.get("seed_point")
        return cls(
            cell_size=float(data.get("cell_size", 0.1)),
            adaptive=bool(data.get("adaptive", False)),
            time_limit=data.get("time_limit"),
            max_iterations=int(data.get("max_iterations", 50)),
            seed_strategy=data.get("seed_strategy", "ordinal_regression"),
            seed_point=None if seed_point is None else np.asarray(seed_point, float),
            solver_options=(
                RankHowOptions.from_dict(data["solver_options"])
                if data.get("solver_options") is not None
                else RankHowOptions(node_limit=2000, verify=False)
            ),
            max_cell_size=float(data.get("max_cell_size", 1.9)),
        )


class _Descent:
    """One seed's SYM-GD descent, advanced one cell solve at a time.

    The descent logic of Algorithms 1 and 2 lives here as an explicit state
    machine so that the serial :meth:`SymGD.solve` path and the lockstep
    matrix multi-seed path run literally the same transitions -- parity
    between the two is structural, not coincidental.
    """

    def __init__(
        self,
        options: SymGDOptions,
        problem: RankingProblem,
        seed: np.ndarray,
        seed_error: int,
    ) -> None:
        self.options = options
        self.problem = problem
        self.seed = np.asarray(seed, dtype=float).copy()
        self.current = self.seed.copy()
        self.current_error = int(seed_error)
        self.best_weights = self.current.copy()
        self.best_error = int(seed_error)
        self.cell_size = options.cell_size
        self.iterations = 0
        self.total_nodes = 0
        self.total_lp_iterations = 0
        self.trajectory: list[tuple[float, int]] = [
            (self.cell_size, int(seed_error))
        ]
        self.elapsed = 0.0
        self.finished = False
        self._final_solve_pending = False

    def active(self, out_of_time: bool) -> bool:
        """Whether another :meth:`step` may run."""
        return (
            not self.finished
            and self.iterations < self.options.max_iterations
            and not out_of_time
        )

    def _absorb(self, result: SynthesisResult) -> None:
        self.total_nodes += result.nodes
        self.total_lp_iterations += int(result.diagnostics.get("lp_iterations", 0))

    def step(self, solver: RankHow, remaining: float | None) -> None:
        """One cell solve plus the resulting state transition."""
        options = self.options
        if self._final_solve_pending:
            # The cell covers (almost) the whole simplex; one final solve at
            # this size is the global problem -- stop after it.
            self.iterations += 1
            cell = cell_around(self.current, self.cell_size)
            result = solver.solve(
                self.problem, cell_bounds=cell.bounds(), warm_start=self.current
            )
            self._absorb(result)
            if result.error >= 0 and result.error < self.best_error:
                self.best_error = int(result.error)
                self.best_weights = result.weights.copy()
            self.finished = True
            return

        self.iterations += 1
        cell = cell_around(self.current, self.cell_size)
        if remaining is not None:
            # Clone the configured solver options wholesale (error_weights,
            # extra escape hatches included) and override only the budget.
            local_solver = RankHow(
                replace(
                    options.solver_options,
                    time_limit=max(remaining, 0.01),
                    verify=False,
                )
            )
        else:
            local_solver = solver
        result = local_solver.solve(
            self.problem, cell_bounds=cell.bounds(), warm_start=self.current
        )
        self._absorb(result)

        stuck = False
        if result.error < 0 or not np.all(np.isfinite(result.weights)):
            # Local model infeasible (seed violates the constraints in this
            # cell); grow the cell or stop.
            stuck = True
        else:
            new_error = int(result.error)
            if new_error < self.best_error:
                self.best_error = new_error
                self.best_weights = result.weights.copy()
            if new_error >= self.current_error:
                stuck = True
                # Even without improvement, adopt the local optimum as the
                # new center when it matches the current error: it lies at
                # the boundary of the explored region and re-centering
                # matches the paper's "cell shifts accordingly".
                if new_error == self.current_error:
                    self.current = result.weights.copy()
            else:
                self.current = result.weights.copy()
                self.current_error = new_error
                self.trajectory.append((self.cell_size, new_error))
                if new_error == 0:
                    stuck = True
        if not stuck:
            return
        if not options.adaptive or self.current_error == 0:
            self.finished = True
            return
        self.cell_size = min(self.cell_size * 2.0, options.max_cell_size)
        self.trajectory.append((self.cell_size, int(self.current_error)))
        if self.cell_size >= options.max_cell_size:
            self._final_solve_pending = True

    def result(self, elapsed: float) -> SynthesisResult:
        """Package the descent's best point as a :class:`SynthesisResult`."""
        options = self.options
        return SynthesisResult(
            weights=self.best_weights,
            attributes=list(self.problem.attributes),
            error=int(self.best_error),
            objective=float(self.best_error),
            optimal=False,  # SYM-GD is a heuristic; never claims optimality
            method="symgd-adaptive" if options.adaptive else "symgd",
            solve_time=elapsed,
            nodes=self.total_nodes,
            iterations=self.iterations,
            diagnostics={
                "k": self.problem.k,
                "seed": self.seed.copy(),
                "seed_error": int(self.trajectory[0][1]),
                "final_cell_size": self.cell_size,
                "trajectory": self.trajectory,
                "lp_iterations": self.total_lp_iterations,
            },
        )


class SymGD:
    """Symbolic gradient descent over the weight simplex."""

    def __init__(self, options: SymGDOptions | None = None) -> None:
        self.options = options or SymGDOptions()

    def solve(self, problem: RankingProblem) -> SynthesisResult:
        """Run SYM-GD on a problem instance and return the best result found."""
        options = self.options
        start = time.perf_counter()

        with obs_span("solver.symgd", k=problem.k) as sp:
            problem, prune_diag = _maybe_prune(problem, options)
            seed = self._seed(problem)
            descent = _Descent(options, problem, seed, _seed_error(problem, seed))
            solver = RankHow(options.solver_options)

            def time_left() -> float | None:
                if options.time_limit is None:
                    return None
                return options.time_limit - (time.perf_counter() - start)

            def out_of_time() -> bool:
                remaining = time_left()
                return remaining is not None and remaining <= 0

            while descent.active(out_of_time()):
                descent.step(solver, time_left())

            result = descent.result(time.perf_counter() - start)
            result.diagnostics.update(prune_diag)
            if sp:
                sp.set_attributes(
                    error=int(result.error),
                    iterations=int(result.iterations),
                    lp_iterations=int(
                        result.diagnostics.get("lp_iterations", 0)
                    ),
                )
            return result

    def solve_multi_seed(
        self,
        problem: RankingProblem,
        seeds: list[np.ndarray] | None = None,
        num_seeds: int = 4,
        executor=None,
        vectorized: bool = True,
    ) -> SynthesisResult:
        """Run independent descents from several seed points; keep the best.

        The paper's key scalability property -- each local cell solve is
        independent -- extends to whole descents: restarting SYM-GD from
        different corners of the simplex explores different basins, and the
        restarts share nothing, so they parallelize perfectly.

        Args:
            problem: The problem instance.
            seeds: Explicit seed weight vectors; defaults to
                :func:`default_seed_points` with ``num_seeds`` points.
            num_seeds: Number of generated seeds when ``seeds`` is ``None``.
            executor: Anything exposing ``map_cells(fn, items)`` (see
                :mod:`repro.engine.executor`); ``None`` runs in-process.  The
                merged result is identical for every backend because each
                descent is deterministic and the merge prefers the earliest
                seed on ties.
            vectorized: When no executor is given, drive all descents in
                lockstep as one ``(num_seeds, m)`` weight matrix -- seed
                errors come from a single batched score/rank/error program
                and finished rows drop out via per-row convergence masking.
                ``False`` keeps the historical one-full-descent-per-seed
                reference loop; the differential oracle asserts both paths
                produce identical per-seed results.
        """
        start = time.perf_counter()
        problem, prune_diag = _maybe_prune(problem, self.options)
        if seeds is None:
            seeds = default_seed_points(
                problem, num_seeds, base_strategy=self.options.seed_strategy
            )
        if not seeds:
            raise ValueError("solve_multi_seed needs at least one seed point")
        if executor is None and vectorized:
            results = self._solve_seeds_lockstep(problem, seeds, start)
        else:
            payloads = [
                (self.options, problem, np.asarray(s, dtype=float)) for s in seeds
            ]
            if executor is None:
                results = [_solve_from_seed(payload) for payload in payloads]
            else:
                results = list(executor.map_cells(_solve_from_seed, payloads))
        best = min(enumerate(results), key=lambda pair: (pair[1].error, pair[0]))[1]
        merged = replace(
            best,
            solve_time=time.perf_counter() - start,
            nodes=sum(r.nodes for r in results),
            iterations=sum(r.iterations for r in results),
            diagnostics={
                **best.diagnostics,
                "num_seeds": len(seeds),
                "per_seed_errors": [int(r.error) for r in results],
                "per_seed_times": [float(r.solve_time) for r in results],
                **prune_diag,
            },
        )
        merged.method = (
            "symgd-adaptive-multiseed" if self.options.adaptive else "symgd-multiseed"
        )
        return merged

    def _solve_seeds_lockstep(
        self,
        problem: RankingProblem,
        seeds: list[np.ndarray],
        start: float,
    ) -> list[SynthesisResult]:
        """All seeds as one weight matrix, advanced round-robin.

        Seed normalization and error evaluation happen for the whole
        ``(num_seeds, m)`` matrix at once; each round then performs one cell
        solve per still-active descent.  Rows whose descent finished are
        masked out, so multi-seed overhead stops scaling with the seed count
        in Python-level work.  The per-descent state machine is the same
        :class:`_Descent` the serial path runs, so each seed performs the
        identical sequence of cell solves it would in its own full descent
        (time limits permitting -- the budget is measured from the shared
        start, exactly like the serial loop measures from its own start).
        """
        options = self.options
        matrix = np.vstack(
            [
                _normalize_seed_point(seed, problem.num_attributes)
                for seed in seeds
            ]
        )
        seed_errors = problem.errors_of_many(matrix)
        descents = [
            _Descent(options, problem, matrix[i], int(seed_errors[i]))
            for i in range(matrix.shape[0])
        ]
        solver = RankHow(options.solver_options)

        def time_left() -> float | None:
            if options.time_limit is None:
                return None
            return options.time_limit - (time.perf_counter() - start)

        while True:
            remaining = time_left()
            out_of_time = remaining is not None and remaining <= 0
            active = [d for d in descents if d.active(out_of_time)]
            if not active:
                break
            for descent in active:
                remaining = time_left()
                if remaining is not None and remaining <= 0:
                    break
                step_start = time.perf_counter()
                descent.step(solver, remaining)
                descent.elapsed += time.perf_counter() - step_start
        return [descent.result(descent.elapsed) for descent in descents]

    def _seed(self, problem: RankingProblem) -> np.ndarray:
        options = self.options
        if options.seed_point is not None:
            return _normalize_seed_point(options.seed_point, problem.num_attributes)
        strategy = get_seed_strategy(options.seed_strategy)
        return strategy(problem)


def _maybe_prune(
    problem: RankingProblem, options: SymGDOptions
) -> tuple[RankingProblem, dict]:
    """Apply rank-dominance pruning once, up front, when the solver options
    request it (``solver_options.extra["prune"]``).

    Pruning before seeding means the whole descent -- seeds, cell solves,
    error evaluations -- runs on the reduced problem; the inner RankHow
    re-prune is a memoized no-op.  Position errors of ranked tuples are
    invariant under the prune (see :mod:`repro.core.prune`), so the reported
    error matches the unpruned descent's.
    """
    if not options.solver_options.extra.get("prune"):
        return problem, {}
    from repro.core.prune import prune_problem

    info = prune_problem(problem)
    return info.problem, {
        "pruned_tuples": info.num_pruned,
        "prune_ratio": info.ratio,
        "prune_original_n": info.original_n,
    }


def _normalize_seed_point(seed: np.ndarray, num_attributes: int) -> np.ndarray:
    """Validate and project an explicit seed point onto the simplex."""
    seed = np.asarray(seed, dtype=float).ravel()
    if seed.shape[0] != num_attributes:
        raise ValueError("seed_point length does not match the attribute count")
    total = float(np.clip(seed, 0.0, None).sum())
    if total <= 0:
        raise ValueError("seed_point must have positive total weight")
    return np.clip(seed, 0.0, None) / total


def _seed_error(problem: RankingProblem, seed: np.ndarray) -> int:
    """Seed error with the score sort computed once and reused."""
    scores = problem.scores(seed)
    sorted_scores = np.sort(scores)
    ranks = induced_ranks(
        scores, problem.tolerances.tie_eps, sorted_scores=sorted_scores
    )
    return position_error(problem.ranking, ranks)


def _solve_from_seed(payload: tuple) -> SynthesisResult:
    """One full descent from one explicit seed (picklable for process pools)."""
    options, problem, seed = payload
    return SymGD(replace(options, seed_point=seed)).solve(problem)


def default_seed_points(
    problem: RankingProblem,
    num_seeds: int,
    base_strategy: str = "ordinal_regression",
    rng=None,
) -> list[np.ndarray]:
    """Deterministic, diverse seed points for :meth:`SymGD.solve_multi_seed`.

    The list starts with the configured strategy's seed and the simplex
    center, continues with the single-attribute corners, and tops up with
    Dirichlet draws from a fixed-seed generator, so the same problem always
    gets the same seed set regardless of executor backend.  Pass ``rng`` (an
    int seed or a shared ``np.random.Generator``, see :mod:`repro.data.rng`)
    to control the top-up draws explicitly; the default keeps the historical
    ``default_rng(num_seeds)`` stream bit-for-bit.
    """
    if num_seeds < 1:
        raise ValueError("num_seeds must be >= 1")
    m = problem.num_attributes
    candidates: list[np.ndarray] = []
    try:
        candidates.append(get_seed_strategy(base_strategy)(problem))
    except (ValueError, KeyError):
        pass
    candidates.append(np.full(m, 1.0 / m))
    candidates.extend(np.eye(m))
    rng = as_generator(num_seeds if rng is None else rng)
    while len(candidates) < num_seeds:
        candidates.append(rng.dirichlet(np.ones(m)))

    seeds: list[np.ndarray] = []
    for candidate in candidates:
        if len(seeds) == num_seeds:
            break
        candidate = np.asarray(candidate, dtype=float)
        if any(np.allclose(candidate, kept, atol=1e-9) for kept in seeds):
            continue
        seeds.append(candidate)
    while len(seeds) < num_seeds:
        seeds.append(rng.dirichlet(np.ones(m)))
    return seeds
