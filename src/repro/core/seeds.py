"""Seed-point strategies for SYM-GD (Section IV-B).

Two strategies from the paper plus a neutral fallback:

* ``ordinal_regression`` (default) -- run the fast Srinivasan-style ordinal
  regression baseline; its loss is not position-based but is correlated with
  it, so the resulting weight vector is usually a good neighbourhood to start
  the symbolic descent in.
* ``grid`` -- partition the weight space into cells of a given size, compute
  the position-error *lower bound* of each cell via interval arithmetic over
  the indicator hyperplanes, and start from the center of the most promising
  cell.
* ``uniform`` -- the center of the simplex (equal weights); useful as a
  constraint-free, deterministic fallback and for ablations.
* ``dirichlet`` -- a random point of the simplex from an explicit seed (an
  int or a shared ``np.random.Generator``, see :mod:`repro.data.rng`); used
  by multi-restart sweeps and the scenario workload generator, which thread
  one generator through every draw so identical master seeds reproduce
  byte-identically.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.cells import cell_error_bounds_many, grid_cells
from repro.core.problem import RankingProblem
from repro.data.rng import as_generator

__all__ = [
    "uniform_seed",
    "linear_regression_seed",
    "ordinal_regression_seed",
    "grid_seed",
    "dirichlet_seed",
    "get_seed_strategy",
]

SeedStrategy = Callable[[RankingProblem], np.ndarray]


def uniform_seed(problem: RankingProblem) -> np.ndarray:
    """Equal weights (the center of the simplex)."""
    m = problem.num_attributes
    return np.full(m, 1.0 / m)


def linear_regression_seed(problem: RankingProblem) -> np.ndarray:
    """Seed from non-negative least squares on the rank labels."""
    from repro.baselines.linear_regression import LinearRegressionBaseline

    result = LinearRegressionBaseline(non_negative=True).solve(problem)
    return _sanitize(result.weights, problem)


def ordinal_regression_seed(problem: RankingProblem) -> np.ndarray:
    """Seed from the ordinal-regression baseline (the paper's default)."""
    from repro.baselines.ordinal_regression import OrdinalRegressionBaseline

    result = OrdinalRegressionBaseline().solve(problem)
    return _sanitize(result.weights, problem)


def grid_seed(
    problem: RankingProblem,
    cell_size: float = 0.25,
    max_cells: int = 2048,
    executor=None,
) -> np.ndarray:
    """Center of the grid cell with the smallest position-error lower bound.

    The per-cell bound evaluations are independent; passing an executor (see
    :mod:`repro.engine.executor`) fans them out across threads or processes.
    Ties between cells break towards the first cell in grid order, so the
    chosen seed is identical for every backend.
    """
    cells = grid_cells(problem.num_attributes, cell_size, max_cells=max_cells)
    if not cells:
        return uniform_seed(problem)
    bounds = cell_error_bounds_many(problem, cells, executor=executor)
    best_index = min(range(len(cells)), key=lambda i: (bounds[i][0], i))
    return _sanitize(cells[best_index].center, problem)


def dirichlet_seed(
    problem: RankingProblem,
    seed=0,
    concentration: float = 1.0,
) -> np.ndarray:
    """A random simplex point from an explicit seed (int or shared Generator).

    Drawing from a passed-in ``np.random.Generator`` advances the caller's
    stream, so a pipeline that threads one generator through many seeds gets
    distinct, fully seed-determined points with no module-level RNG state.
    """
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    rng = as_generator(seed)
    draw = rng.dirichlet(np.full(problem.num_attributes, float(concentration)))
    return _sanitize(draw, problem)


def _sanitize(weights: np.ndarray, problem: RankingProblem) -> np.ndarray:
    """Project a candidate seed onto the simplex; fall back to uniform."""
    weights = np.asarray(weights, dtype=float).ravel()
    if weights.shape[0] != problem.num_attributes or not np.all(np.isfinite(weights)):
        return uniform_seed(problem)
    weights = np.clip(weights, 0.0, None)
    total = float(weights.sum())
    if total <= 0:
        return uniform_seed(problem)
    return weights / total


def get_seed_strategy(name: str, **kwargs) -> SeedStrategy:
    """Look up a seed strategy by name.

    Args:
        name: ``"ordinal_regression"``, ``"linear_regression"``, ``"grid"`` or
            ``"uniform"``.
        **kwargs: Extra parameters forwarded to the strategy (e.g.
            ``cell_size`` for the grid strategy).
    """
    if name == "uniform":
        return uniform_seed
    if name == "linear_regression":
        return linear_regression_seed
    if name == "ordinal_regression":
        return ordinal_regression_seed
    if name == "grid":
        return lambda problem: grid_seed(problem, **kwargs)
    if name == "dirichlet":
        return lambda problem: dirichlet_seed(problem, **kwargs)
    raise ValueError(f"unknown seed strategy {name!r}")
