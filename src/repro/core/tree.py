"""The arrangement-tree PTIME baseline (Theorem 1, and [31]'s algorithm).

TREE enumerates the partitions of weight space induced by the indicator
hyperplanes.  Starting from the whole simplex it picks one undecided indicator
``delta[s, r]`` at a time and asks, with an LP feasibility check, whether the
current region intersects the half-space where the indicator is 1
(``w.(s-r) >= eps1``) and/or where it is 0 (``w.(s-r) <= eps2``).  Feasible
children are explored recursively (depth-first by default, breadth-first like
the paper's footnote 4 on request).  At a leaf every indicator is decided, so
the position error of the region is a constant, and any feasible point of the
region is a witness weight vector.

The paper's point is that this guaranteed-PTIME strategy solves many LPs in
isolation and cannot share information across branches, which makes it orders
of magnitude slower than the holistic MILP solve.  The implementation offers
two switches used in the Section VI-B case study:

* ``use_separation_gap`` -- whether the ``eps1`` threshold is used when
  splitting (the paper shows that adding the gap shrinks the tree);
* ``prune_by_bound`` -- optional best-error pruning; disable it to get the
  "naive" enumeration the theorem describes.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult
from repro.solvers.lp import LinearProgram

__all__ = ["TreeOptions", "TreeSolver"]


@dataclass
class TreeOptions:
    """Configuration of the TREE baseline.

    Attributes:
        time_limit: Wall-clock budget in seconds (the case study lets TREE run
            much longer than RankHow; benchmarks cap it).
        node_limit: Maximum number of tree nodes to expand.
        use_separation_gap: Split with ``eps1`` / ``eps2`` (the "+ eps1"
            variant of the case study); when ``False`` a tiny positive gap is
            used instead, mimicking the original algorithm.
        prune_by_bound: Prune subtrees whose partial error already exceeds the
            best complete error found so far.
        strategy: ``"dfs"`` (default) or ``"bfs"``.
        lp_method: LP backend for the feasibility checks.
    """

    time_limit: float | None = None
    node_limit: int = 2_000_000
    use_separation_gap: bool = True
    prune_by_bound: bool = True
    strategy: str = "dfs"
    lp_method: str = "scipy"

    def to_dict(self) -> dict:
        """Canonical JSON-serializable representation (for fingerprinting)."""
        return {
            "time_limit": None if self.time_limit is None else float(self.time_limit),
            "node_limit": int(self.node_limit),
            "use_separation_gap": bool(self.use_separation_gap),
            "prune_by_bound": bool(self.prune_by_bound),
            "strategy": self.strategy,
            "lp_method": self.lp_method,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TreeOptions":
        return cls(
            time_limit=data.get("time_limit"),
            node_limit=int(data.get("node_limit", 2_000_000)),
            use_separation_gap=bool(data.get("use_separation_gap", True)),
            prune_by_bound=bool(data.get("prune_by_bound", True)),
            strategy=data.get("strategy", "dfs"),
            lp_method=data.get("lp_method", "scipy"),
        )


@dataclass
class _TreeNode:
    depth: int
    assignment: list[int]  # -1 undecided, 0 or 1 decided, indexed like pairs


class TreeSolver:
    """Cell-enumeration solver for OPT (the PTIME baseline)."""

    def __init__(self, options: TreeOptions | None = None) -> None:
        self.options = options or TreeOptions()

    def solve(self, problem: RankingProblem) -> SynthesisResult:
        """Enumerate hyperplane cells and return the best scoring function."""
        options = self.options
        start = time.perf_counter()
        matrix = problem.matrix
        tolerances = problem.tolerances
        positions = problem.ranking.positions
        ranked = [int(r) for r in problem.top_k_indices()]
        n = problem.num_tuples

        eps1 = tolerances.eps1 if options.use_separation_gap else 1e-12
        eps2 = tolerances.eps2 if options.use_separation_gap else 0.0

        # Enumerate the undecided indicator pairs, grouping by ranked tuple so
        # that partial error bounds become informative early.
        pairs: list[tuple[int, int]] = []  # (s, r)
        fixed_value: dict[tuple[int, int], int] = {}
        fixed_ones = {r: 0 for r in ranked}
        for r in ranked:
            for s in range(n):
                if s == r:
                    continue
                diff = matrix[s] - matrix[r]
                low, high = float(diff.min()), float(diff.max())
                if low >= eps1:
                    fixed_value[(s, r)] = 1
                    fixed_ones[r] += 1
                elif high <= eps2:
                    fixed_value[(s, r)] = 0
                else:
                    pairs.append((s, r))

        pair_diffs = [matrix[s] - matrix[r] for (s, r) in pairs]
        pairs_of_tuple: dict[int, list[int]] = {r: [] for r in ranked}
        for index, (_, r) in enumerate(pairs):
            pairs_of_tuple[r].append(index)

        best_error = float("inf")
        best_weights: np.ndarray | None = None
        nodes_expanded = 0
        leaves = 0

        def base_lp() -> LinearProgram:
            lp = LinearProgram(problem.num_attributes)
            lp.set_all_bounds(
                np.zeros(problem.num_attributes), np.ones(problem.num_attributes)
            )
            lp.add_constraint(np.ones(problem.num_attributes), "==", 1.0)
            for row, sense, rhs in problem.constraints.weight_rows(problem.attributes):
                lp.add_constraint(row, sense, rhs)
            for precedence in problem.constraints.precedence_constraints:
                diff = matrix[precedence.above] - matrix[precedence.below]
                lp.add_constraint(diff, ">=", eps1)
            return lp

        def region_lp(assignment: list[int]) -> LinearProgram:
            lp = base_lp()
            for index, value in enumerate(assignment):
                if value == -1:
                    continue
                diff = pair_diffs[index]
                if value == 1:
                    lp.add_constraint(diff, ">=", eps1)
                else:
                    lp.add_constraint(diff, "<=", eps2)
            return lp

        def partial_error_bound(assignment: list[int]) -> int:
            total = 0
            for r in ranked:
                ones = fixed_ones[r]
                undecided = 0
                for index in pairs_of_tuple[r]:
                    if assignment[index] == 1:
                        ones += 1
                    elif assignment[index] == -1:
                        undecided += 1
                min_rank = 1 + ones
                max_rank = min_rank + undecided
                given = int(positions[r])
                if given < min_rank:
                    total += min_rank - given
                elif given > max_rank:
                    total += given - max_rank
            return total

        def leaf_error(assignment: list[int]) -> int:
            total = 0
            for r in ranked:
                ones = fixed_ones[r] + sum(
                    1 for index in pairs_of_tuple[r] if assignment[index] == 1
                )
                total += abs(1 + ones - int(positions[r]))
            return total

        def time_exceeded() -> bool:
            return (
                options.time_limit is not None
                and time.perf_counter() - start > options.time_limit
            )

        root = _TreeNode(0, [-1] * len(pairs))
        frontier: deque[_TreeNode] = deque([root])
        pop = frontier.pop if options.strategy == "dfs" else frontier.popleft

        while frontier:
            if nodes_expanded >= options.node_limit or time_exceeded():
                break
            node = pop()
            nodes_expanded += 1

            if options.prune_by_bound and partial_error_bound(node.assignment) >= best_error:
                continue

            if node.depth == len(pairs):
                leaves += 1
                error = leaf_error(node.assignment)
                if error < best_error:
                    solution = region_lp(node.assignment).solve(options.lp_method)
                    if solution.is_optimal:
                        best_error = error
                        best_weights = np.asarray(solution.x[: problem.num_attributes])
                        if best_error == 0:
                            break
                continue

            index = node.depth
            for value in (0, 1):
                assignment = list(node.assignment)
                assignment[index] = value
                lp = region_lp(assignment)
                feasibility = lp.solve(options.lp_method)
                if feasibility.is_optimal:
                    frontier.append(_TreeNode(node.depth + 1, assignment))

        elapsed = time.perf_counter() - start
        if best_weights is None:
            return SynthesisResult(
                weights=np.full(problem.num_attributes, np.nan),
                attributes=list(problem.attributes),
                error=-1,
                objective=float("inf"),
                optimal=False,
                method="tree",
                solve_time=elapsed,
                nodes=nodes_expanded,
                diagnostics={"status": "no_solution", "k": problem.k, "leaves": leaves},
            )

        # The search is conclusive when the frontier was exhausted within the
        # limits, or when a zero-error cell was found (nothing can beat it).
        exhausted = (not frontier and nodes_expanded < options.node_limit) or best_error == 0
        true_error = problem.error_of(best_weights)
        return SynthesisResult(
            weights=best_weights,
            attributes=list(problem.attributes),
            error=int(true_error),
            objective=float(best_error),
            optimal=exhausted,
            method="tree",
            solve_time=elapsed,
            nodes=nodes_expanded,
            diagnostics={
                "k": problem.k,
                "leaves": leaves,
                "pairs": len(pairs),
                "eliminated": len(fixed_value),
                "strategy": self.options.strategy,
            },
        )
