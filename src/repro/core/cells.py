"""Weight-space cells and per-cell error bounds (Section IV-B).

A *cell* is an axis-aligned box in weight space, intersected with the simplex
``w >= 0, sum w = 1``.  SYM-GD restricts the MILP to a cell around the seed
point; the grid seeding strategy evaluates a lower bound of the position error
achievable inside each cell and starts from the most promising one.

The bound follows the paper's insight: for a cell ``C`` and an indicator
hyperplane ``w . (s - r) = eps``, either the cell lies entirely on one side
(the indicator is constant over the cell) or the hyperplane crosses it (the
indicator is free).  Counting constant-1, constant-0 and free indicators per
ranked tuple gives an interval for its induced rank and therefore a lower and
an upper bound on its position error.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core import chunking
from repro.core.problem import RankingProblem

__all__ = [
    "Cell",
    "cell_around",
    "grid_cells",
    "cell_error_bounds",
    "cell_error_bounds_reference",
    "cell_error_bounds_many",
    "CellBoundEvaluator",
]


@dataclass(frozen=True)
class Cell:
    """An axis-aligned box ``[lower, upper]`` in weight space."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=float)
        upper = np.asarray(self.upper, dtype=float)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("cell bounds must be 1-D arrays of equal length")
        if np.any(lower > upper + 1e-12):
            raise ValueError("cell lower bound exceeds upper bound")
        object.__setattr__(self, "lower", np.clip(lower, 0.0, 1.0))
        object.__setattr__(self, "upper", np.clip(upper, 0.0, 1.0))

    @property
    def dimension(self) -> int:
        return int(self.lower.shape[0])

    @property
    def center(self) -> np.ndarray:
        return (self.lower + self.upper) / 2.0

    def contains(self, weights: np.ndarray, tol: float = 1e-9) -> bool:
        weights = np.asarray(weights, dtype=float)
        return bool(
            np.all(weights >= self.lower - tol) and np.all(weights <= self.upper + tol)
        )

    def intersects_simplex(self, tol: float = 1e-9) -> bool:
        """Does the box contain any point with ``sum w = 1``?"""
        return (
            float(self.lower.sum()) <= 1.0 + tol
            and float(self.upper.sum()) >= 1.0 - tol
        )

    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        return self.lower.copy(), self.upper.copy()

    def to_dict(self) -> dict:
        """JSON-serializable representation (inverse: :meth:`from_dict`)."""
        return {
            "lower": [float(v) for v in self.lower],
            "upper": [float(v) for v in self.upper],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Cell":
        return cls(
            np.asarray(data["lower"], dtype=float),
            np.asarray(data["upper"], dtype=float),
        )


def cell_around(center: np.ndarray, size: float) -> Cell:
    """The cell of side ``size`` centered at a weight vector (clipped to [0,1]).

    Matches the paper's ``solve(W, c)`` constraint
    ``max(w_i - c/2, 0) <= w_i <= min(w_i + c/2, 1)``.
    """
    if not 0.0 < size < 2.0:
        raise ValueError("cell size must lie in (0, 2)")
    center = np.asarray(center, dtype=float).ravel()
    half = size / 2.0
    return Cell(np.clip(center - half, 0.0, 1.0), np.clip(center + half, 0.0, 1.0))


def grid_cells(
    num_attributes: int,
    cell_size: float,
    max_cells: int = 4096,
) -> list[Cell]:
    """Axis-aligned grid of cells covering the weight simplex.

    The full grid has ``(1/c)^m`` cells; only cells that intersect the simplex
    are returned, and enumeration stops after ``max_cells`` to keep the seeding
    strategy tractable for larger ``m`` (the paper notes the same practical
    concern, which is why ordinal-regression seeding is the default).
    """
    if not 0.0 < cell_size <= 1.0:
        raise ValueError("cell_size must lie in (0, 1]")
    steps = int(np.ceil(1.0 / cell_size))
    cells: list[Cell] = []
    for combo in itertools.product(range(steps), repeat=num_attributes):
        lower = np.asarray(combo, dtype=float) * cell_size
        upper = np.minimum(lower + cell_size, 1.0)
        cell = Cell(lower, upper)
        if cell.intersects_simplex():
            cells.append(cell)
            if len(cells) >= max_cells:
                return cells
    return cells


def cell_error_bounds_reference(
    problem: RankingProblem, cell: Cell
) -> tuple[int, int]:
    """Scalar reference implementation of :func:`cell_error_bounds`.

    One Python-level pass per ranked tuple, recomputing the pairwise
    difference matrix per call.  Kept verbatim as the ground truth the
    vectorized :class:`CellBoundEvaluator` is differentially tested against
    (``repro.testing``'s vectorized-vs-reference invariant).
    """
    if cell.dimension != problem.num_attributes:
        raise ValueError("cell dimension does not match the number of attributes")
    matrix = problem.matrix
    tolerances = problem.tolerances
    positions = problem.ranking.positions
    ranked = problem.top_k_indices()

    lower_total = 0
    upper_total = 0
    lower_box, upper_box = cell.lower, cell.upper
    for r in ranked:
        diffs = matrix - matrix[r]
        # Interval of w . diff over the box, intersected with the simplex bound.
        positive = np.clip(diffs, 0.0, None)
        negative = np.clip(diffs, None, 0.0)
        box_low = positive @ lower_box + negative @ upper_box
        box_high = positive @ upper_box + negative @ lower_box
        simplex_low = diffs.min(axis=1)
        simplex_high = diffs.max(axis=1)
        low = np.maximum(box_low, simplex_low)
        high = np.minimum(box_high, simplex_high)

        certain_one = (low >= tolerances.eps1)
        certain_zero = (high <= tolerances.eps2)
        certain_one[r] = False
        certain_zero[r] = True  # a tuple never beats itself
        free = ~(certain_one | certain_zero)
        free[r] = False

        min_rank = 1 + int(np.sum(certain_one))
        max_rank = min_rank + int(np.sum(free))
        given = int(positions[r])
        if given < min_rank:
            lower_total += min_rank - given
            upper_total += max_rank - given
        elif given > max_rank:
            lower_total += given - max_rank
            upper_total += given - min_rank
        else:
            upper_total += max(abs(given - min_rank), abs(max_rank - given))
    return lower_total, upper_total


def cell_error_bounds(problem: RankingProblem, cell: Cell) -> tuple[int, int]:
    """Lower and upper bound of the position error over a cell.

    For every ranked tuple ``r`` and every other tuple ``s``, the score
    difference ``w . (s - r)`` over the cell (intersected with the simplex) is
    bounded by interval arithmetic; comparing the interval with ``eps1`` /
    ``eps2`` classifies the indicator as certainly 1, certainly 0, or free.
    The induced rank of ``r`` then lies in ``[1 + certain_ones,
    1 + certain_ones + free]`` and its error contribution in the distance
    between that interval and the given position.

    Delegates to the scalar reference implementation; use
    :class:`CellBoundEvaluator` / :func:`cell_error_bounds_many` when
    classifying many cells against the same problem.
    """
    return cell_error_bounds_reference(problem, cell)


class CellBoundEvaluator:
    """Batched cell-error bounds for one problem.

    The indicator-hyperplane data -- the ``(n_pairs, m)`` stacked difference
    matrix ``s - r`` over every (ranked tuple, other tuple) pair, split into
    positive and negative parts, plus the simplex interval per pair -- is
    precomputed once per problem.  Classifying cells then costs two matmuls
    of the stacked pair matrix against the stacked ``(n_cells, m)`` corner
    matrices plus vectorized comparisons, instead of a Python loop over
    cells and ranked tuples that rebuilds the difference matrix every time.

    For million-row problems the precomputed ``(n_pairs, m)`` pair matrices
    themselves are the memory blowup, so the evaluator has a **streaming**
    mode (``streaming=True``, or auto when the precomputation would exceed
    the data-plane memory budget of :mod:`repro.core.chunking`): nothing is
    precomputed, and each classification pass re-derives pair blocks of
    bounded size, accumulating the integer certain-one / free counts per
    (ranked tuple, cell).  Counts are exact integers and every per-pair
    classification runs the same elementwise formula, so streaming bounds
    are bitwise-equal to the precomputed ones (asserted by the
    ``streaming_parity`` oracle invariant).
    """

    def __init__(
        self, problem: RankingProblem, streaming: bool | None = None
    ) -> None:
        self.problem = problem
        matrix = problem.matrix
        ranked = problem.top_k_indices()
        n = problem.num_tuples
        m = problem.num_attributes
        self._num_ranked = ranked.shape[0]
        self._num_tuples = n
        self._eps1 = problem.tolerances.eps1
        self._eps2 = problem.tolerances.eps2
        self._given = problem.ranking.positions[ranked].astype(int)
        if streaming is None:
            # positive + negative pair matrices, plus the two simplex vectors.
            precompute_bytes = self._num_ranked * n * (
                2 * m * matrix.itemsize + 2 * 8
            )
            streaming = precompute_bytes > chunking.memory_budget_bytes()
        self.streaming = bool(streaming)
        if self.streaming:
            self._ranked = np.asarray(ranked)
            self._positive = None
            self._negative = None
            self._simplex_low = None
            self._simplex_high = None
            self._self_index = None
            return
        # diffs[r_idx, s, :] = matrix[s] - matrix[ranked[r_idx]]
        diffs = matrix[None, :, :] - matrix[ranked][:, None, :]
        pairs = diffs.reshape(self._num_ranked * n, problem.num_attributes)
        self._positive = np.clip(pairs, 0.0, None)
        self._negative = np.clip(pairs, None, 0.0)
        self._simplex_low = pairs.min(axis=1)
        self._simplex_high = pairs.max(axis=1)
        # Flat index of the (r, r) self-pair per ranked tuple: a tuple never
        # beats itself, mirroring the reference implementation's overrides.
        self._self_index = np.arange(self._num_ranked) * n + np.asarray(ranked)

    def bounds_many(self, cells: Sequence[Cell]) -> list[tuple[int, int]]:
        """Bounds for many cells in one (chunked) matrix program."""
        cells = list(cells)
        if not cells:
            return []
        lowers = np.stack([cell.lower for cell in cells])
        uppers = np.stack([cell.upper for cell in cells])
        if lowers.shape[1] != self.problem.num_attributes:
            raise ValueError("cell dimension does not match the number of attributes")
        if self.streaming:
            return self._bounds_streaming(lowers, uppers)
        # Bound the transient (n_pairs, chunk) matrices to a few MB.
        n_pairs = max(self._positive.shape[0], 1)
        chunk = max(1, int(2_000_000 // n_pairs))
        results: list[tuple[int, int]] = []
        for start in range(0, len(cells), chunk):
            results.extend(
                self._bounds_chunk(
                    lowers[start : start + chunk], uppers[start : start + chunk]
                )
            )
        return results

    def bounds(self, cell: Cell) -> tuple[int, int]:
        """Bounds for a single cell (batched kernel, batch size one)."""
        return self.bounds_many([cell])[0]

    def updated_for(self, problem: RankingProblem) -> "CellBoundEvaluator | None":
        """Derive an evaluator for an edited problem without a full rebuild.

        Supports the edits a synthesis session makes around a fixed ranked
        prefix: tolerance / constraint / metadata changes (same tuples, same
        matrix -- the stacked pair matrices are shared outright), appending
        unranked tuples (only the new ``(ranked, new tuple)`` pair rows are
        computed), and dropping unranked tuples (pair rows are masked out).
        The derived evaluator is bit-identical to a fresh
        ``CellBoundEvaluator(problem)`` -- the reused rows are the same float
        values, and the new rows run the same subtraction -- which the
        incremental-parity invariant checks.  Returns ``None`` when the edit
        is not one of these shapes (caller rebuilds).
        """
        if self.streaming:
            return None  # nothing precomputed to derive from; rebuilds are cheap
        old = self.problem
        if (
            problem.attributes != old.attributes
            or problem.num_attributes != old.num_attributes
        ):
            return None
        new_matrix, old_matrix = problem.matrix, old.matrix
        new_positions = problem.ranking.positions
        old_positions = old.ranking.positions
        n_old, n_new = old.num_tuples, problem.num_tuples
        k, m = self._num_ranked, old.num_attributes

        if n_new == n_old:
            if not (
                np.array_equal(new_matrix, old_matrix)
                and np.array_equal(new_positions, old_positions)
            ):
                return None
            return self._clone(
                problem,
                self._positive,
                self._negative,
                self._simplex_low,
                self._simplex_high,
                n_new,
            )

        if n_new > n_old:
            # Appended tuples: prefix must be untouched and the new tuples
            # unranked (the "add candidate tuples" session edit).
            if not (
                np.array_equal(new_positions[:n_old], old_positions)
                and np.all(new_positions[n_old:] == 0)
                and np.array_equal(new_matrix[:n_old], old_matrix)
            ):
                return None
            ranked = old.top_k_indices()
            added = new_matrix[n_old:]
            new_diffs = added[None, :, :] - new_matrix[ranked][:, None, :]
            positive = np.concatenate(
                [
                    self._positive.reshape(k, n_old, m),
                    np.clip(new_diffs, 0.0, None),
                ],
                axis=1,
            ).reshape(k * n_new, m)
            negative = np.concatenate(
                [
                    self._negative.reshape(k, n_old, m),
                    np.clip(new_diffs, None, 0.0),
                ],
                axis=1,
            ).reshape(k * n_new, m)
            simplex_low = np.concatenate(
                [self._simplex_low.reshape(k, n_old), new_diffs.min(axis=2)], axis=1
            ).reshape(k * n_new)
            simplex_high = np.concatenate(
                [self._simplex_high.reshape(k, n_old), new_diffs.max(axis=2)], axis=1
            ).reshape(k * n_new)
            return self._clone(
                problem, positive, negative, simplex_low, simplex_high, n_new
            )

        # Dropped tuples: the surviving rows must be an (order-preserving)
        # subsequence of the old rows, every dropped tuple unranked, and the
        # surviving positions untouched.
        keep = np.full(n_new, -1, dtype=int)
        cursor = 0
        for j in range(n_new):
            while cursor < n_old and not (
                np.array_equal(new_matrix[j], old_matrix[cursor])
                and new_positions[j] == old_positions[cursor]
            ):
                if old_positions[cursor] != 0:
                    return None  # a ranked tuple would have to be dropped
                cursor += 1
            if cursor >= n_old:
                return None
            keep[j] = cursor
            cursor += 1
        if np.any(old_positions[cursor:] != 0):
            return None
        shape = (k, n_old)
        return self._clone(
            problem,
            self._positive.reshape(k, n_old, m)[:, keep, :].reshape(k * n_new, m),
            self._negative.reshape(k, n_old, m)[:, keep, :].reshape(k * n_new, m),
            self._simplex_low.reshape(shape)[:, keep].reshape(k * n_new),
            self._simplex_high.reshape(shape)[:, keep].reshape(k * n_new),
            n_new,
        )

    def _clone(
        self,
        problem: RankingProblem,
        positive: np.ndarray,
        negative: np.ndarray,
        simplex_low: np.ndarray,
        simplex_high: np.ndarray,
        num_tuples: int,
    ) -> "CellBoundEvaluator":
        """An evaluator over precomputed pair matrices (no re-derivation)."""
        clone = object.__new__(CellBoundEvaluator)
        clone.problem = problem
        clone.streaming = False
        clone._num_ranked = self._num_ranked
        clone._num_tuples = num_tuples
        clone._positive = positive
        clone._negative = negative
        clone._simplex_low = simplex_low
        clone._simplex_high = simplex_high
        ranked = problem.top_k_indices()
        clone._self_index = np.arange(self._num_ranked) * num_tuples + np.asarray(
            ranked
        )
        clone._eps1 = problem.tolerances.eps1
        clone._eps2 = problem.tolerances.eps2
        clone._given = problem.ranking.positions[ranked].astype(int)
        return clone

    def _bounds_chunk(
        self, lowers: np.ndarray, uppers: np.ndarray
    ) -> list[tuple[int, int]]:
        # Interval of w . diff over each box, intersected with the simplex
        # interval: one matmul per corner matrix covers every (pair, cell).
        box_low = self._positive @ lowers.T + self._negative @ uppers.T
        box_high = self._positive @ uppers.T + self._negative @ lowers.T
        low = np.maximum(box_low, self._simplex_low[:, None])
        high = np.minimum(box_high, self._simplex_high[:, None])

        certain_one = low >= self._eps1
        certain_zero = high <= self._eps2
        certain_one[self._self_index, :] = False
        certain_zero[self._self_index, :] = True
        free = ~(certain_one | certain_zero)

        shape = (self._num_ranked, self._num_tuples, lowers.shape[0])
        min_rank = 1 + certain_one.reshape(shape).sum(axis=1)
        max_rank = min_rank + free.reshape(shape).sum(axis=1)
        return self._fold_rank_intervals(min_rank, max_rank)

    def _bounds_streaming(
        self, lowers: np.ndarray, uppers: np.ndarray
    ) -> list[tuple[int, int]]:
        """Streaming classification: pair blocks re-derived, counts folded.

        Per tuple block, the same diff / clip / matmul / threshold pipeline
        as the precomputed kernel runs over a ``(k * block, m)`` slice, and
        only the integer certain-one / free counts per (ranked tuple, cell)
        survive the block.  Integer accumulation is associative, so the
        block size never changes the result.
        """
        problem = self.problem
        matrix = problem.matrix
        ranked = self._ranked
        k = self._num_ranked
        n = self._num_tuples
        m = problem.num_attributes
        n_cells = lowers.shape[0]
        ranked_rows = matrix[ranked]
        # Per tuple row: k pair rows of diffs/positive/negative plus the
        # simplex vectors and the (pair, cell) classification transients.
        row_bytes = k * (3 * m * matrix.itemsize + 2 * 8 + 6 * n_cells * 8)
        rows = chunking.chunk_rows_for(row_bytes, n, None)
        chunking.record_chunked_eval(rows * row_bytes)
        ones_count = np.zeros((k, n_cells), dtype=np.int64)
        free_count = np.zeros((k, n_cells), dtype=np.int64)
        for start in range(0, n, rows):
            sub = matrix[start : start + rows]
            block = sub.shape[0]
            diffs = sub[None, :, :] - ranked_rows[:, None, :]
            pairs = diffs.reshape(k * block, m)
            positive = np.clip(pairs, 0.0, None)
            negative = np.clip(pairs, None, 0.0)
            box_low = positive @ lowers.T + negative @ uppers.T
            box_high = positive @ uppers.T + negative @ lowers.T
            low = np.maximum(box_low, pairs.min(axis=1)[:, None])
            high = np.minimum(box_high, pairs.max(axis=1)[:, None])
            certain_one = low >= self._eps1
            certain_zero = high <= self._eps2
            # Self-pairs landing in this block: a tuple never beats itself.
            in_block = (ranked >= start) & (ranked < start + block)
            for r_idx in np.where(in_block)[0]:
                flat = r_idx * block + (int(ranked[r_idx]) - start)
                certain_one[flat, :] = False
                certain_zero[flat, :] = True
            free = ~(certain_one | certain_zero)
            shape = (k, block, n_cells)
            ones_count += certain_one.reshape(shape).sum(axis=1)
            free_count += free.reshape(shape).sum(axis=1)
        min_rank = 1 + ones_count
        max_rank = min_rank + free_count
        return self._fold_rank_intervals(min_rank, max_rank)

    def _fold_rank_intervals(
        self, min_rank: np.ndarray, max_rank: np.ndarray
    ) -> list[tuple[int, int]]:
        """Per-cell error bounds from the (ranked, cell) rank intervals."""
        given = self._given[:, None]

        below = given < min_rank
        above = given > max_rank
        lower_contrib = np.where(
            below, min_rank - given, np.where(above, given - max_rank, 0)
        )
        inside = np.maximum(np.abs(given - min_rank), np.abs(max_rank - given))
        upper_contrib = np.where(
            below, max_rank - given, np.where(above, given - min_rank, inside)
        )
        lower_totals = lower_contrib.sum(axis=0)
        upper_totals = upper_contrib.sum(axis=0)
        return [
            (int(lo), int(hi)) for lo, hi in zip(lower_totals, upper_totals)
        ]


def _bounds_chunk_task(payload: tuple) -> list[tuple[int, int]]:
    """Evaluate error bounds over one chunk of cells.

    Module-level so that process-pool executors can pickle it.  Each chunk
    builds its own :class:`CellBoundEvaluator` (cheap relative to the chunk)
    unless the scalar reference path was requested.
    """
    problem, cells, vectorized = payload
    if not vectorized:
        return [cell_error_bounds_reference(problem, cell) for cell in cells]
    return CellBoundEvaluator(problem).bounds_many(cells)


def cell_error_bounds_many(
    problem: RankingProblem,
    cells: Sequence[Cell],
    executor=None,
    chunk_size: int = 64,
    vectorized: bool = True,
) -> list[tuple[int, int]]:
    """Error bounds for many cells, optionally fanned out over an executor.

    Args:
        problem: The problem instance.
        cells: Cells to evaluate (results come back in the same order).
        executor: Anything exposing ``map_cells(fn, items)`` (see
            :mod:`repro.engine.executor`); ``None`` evaluates serially.
        chunk_size: Cells per executor task; chunking keeps the per-task
            pickling overhead of the problem instance amortized over many
            cheap bound evaluations.
        vectorized: Classify all cells against all indicator hyperplanes as
            one matrix program (:class:`CellBoundEvaluator`).  ``False``
            falls back to the scalar reference loop; the differential oracle
            asserts the two agree on every scenario family.
    """
    cells = list(cells)
    if executor is None or len(cells) <= chunk_size:
        if vectorized:
            return CellBoundEvaluator(problem).bounds_many(cells)
        return [cell_error_bounds_reference(problem, cell) for cell in cells]
    payloads = [
        (problem, cells[start : start + chunk_size], vectorized)
        for start in range(0, len(cells), chunk_size)
    ]
    chunked = executor.map_cells(_bounds_chunk_task, payloads)
    return [bounds for chunk in chunked for bounds in chunk]
