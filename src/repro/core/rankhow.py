"""The RankHow exact solver (Sections III and V).

:class:`RankHow` is the user-facing facade: it builds the Equation (2) MILP
for a :class:`~repro.core.problem.RankingProblem`, applies the Section V-B
indicator elimination, solves the program with the branch-and-bound substrate
(:mod:`repro.solvers`), optionally verifies the result with exact arithmetic,
and returns a :class:`~repro.core.result.SynthesisResult`.

The solver can also be restricted to a box in weight space (``cell_bounds``),
which is how SYM-GD reuses it for local solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.formulation import RankHowFormulation
from repro.core.precision import verify_weights
from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult
from repro.obs.trace import span as obs_span
from repro.solvers.branch_and_bound import BranchAndBoundSolver, SolverOptions
from repro.solvers.milp import MILPStatus

__all__ = ["RankHowOptions", "RankHow"]


@dataclass
class RankHowOptions:
    """Configuration of the exact solver.

    Attributes:
        time_limit: Wall-clock limit in seconds for the MILP solve.
        node_limit: Branch-and-bound node limit.
        lp_method: LP backend ("scipy", "simplex", or "auto").
        eliminate_dominated: Apply the Section V-B indicator elimination.
        verify: Run exact-arithmetic verification on the returned weights.
        error_weights: Optional per-tuple objective weights (tuple index ->
            weight); defaults to plain position error.
        search: Branch-and-bound node order ("best_first" or "depth_first").
        warm_start_strategy: How to obtain an initial incumbent when the caller
            does not supply one.  Commercial MILP solvers lean heavily on
            primal heuristics to find strong incumbents early; this package's
            branch-and-bound substrate is much simpler, so by default
            (``"symgd"``) it borrows the paper's own SYM-GD descent as its
            primal heuristic before starting the exact search.  Other choices:
            ``"ordinal_regression"``, ``"uniform"``, ``"none"``.
    """

    time_limit: float | None = None
    node_limit: int = 50000
    lp_method: str = "scipy"
    eliminate_dominated: bool = True
    verify: bool = True
    error_weights: dict[int, float] | None = None
    search: str = "best_first"
    warm_start_strategy: str = "symgd"
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Canonical JSON-serializable representation.

        Used by the engine's content-addressed cache to fingerprint solver
        configurations; integer dictionary keys become strings so the output
        survives a JSON round trip unchanged.
        """
        return {
            "time_limit": None if self.time_limit is None else float(self.time_limit),
            "node_limit": int(self.node_limit),
            "lp_method": self.lp_method,
            "eliminate_dominated": bool(self.eliminate_dominated),
            "verify": bool(self.verify),
            "error_weights": (
                None
                if self.error_weights is None
                else {str(k): float(v) for k, v in self.error_weights.items()}
            ),
            "search": self.search,
            "warm_start_strategy": self.warm_start_strategy,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RankHowOptions":
        error_weights = data.get("error_weights")
        return cls(
            time_limit=data.get("time_limit"),
            node_limit=int(data.get("node_limit", 50000)),
            lp_method=data.get("lp_method", "scipy"),
            eliminate_dominated=bool(data.get("eliminate_dominated", True)),
            verify=bool(data.get("verify", True)),
            error_weights=(
                None
                if error_weights is None
                else {int(k): float(v) for k, v in error_weights.items()}
            ),
            search=data.get("search", "best_first"),
            warm_start_strategy=data.get("warm_start_strategy", "symgd"),
            extra=dict(data.get("extra", {})),
        )


class RankHow:
    """Exact OPT solver based on the MILP formulation of Equation (2)."""

    def __init__(self, options: RankHowOptions | None = None) -> None:
        self.options = options or RankHowOptions()

    def solve(
        self,
        problem: RankingProblem,
        cell_bounds: tuple[np.ndarray, np.ndarray] | None = None,
        warm_start: np.ndarray | None = None,
        context=None,
    ) -> SynthesisResult:
        """Solve OPT (optionally restricted to a weight-space cell).

        Args:
            problem: The problem instance.
            cell_bounds: Optional ``(lower, upper)`` box on the weights.
            warm_start: Optional weight vector used as the initial incumbent.
            context: Optional :class:`~repro.engine.context.SolveContext`
                (duck-typed -- this module does not import the engine).  Warm
                artifacts from a parent solve flow in when the context opts
                in (``reuse_basis``: the parent's root LP basis;
                ``reuse_incumbent``: its weights as an extra incumbent), and
                this solve's reusable artifacts flow back out via
                ``context.capture_*``.  A context with both flags off (the
                exact-parity default) captures without injecting, so the
                solve is bitwise the cold solve.

        Returns:
            A :class:`SynthesisResult`; ``optimal`` is ``True`` only when the
            branch-and-bound proved optimality within its limits.
        """
        with obs_span("solver.rankhow", k=problem.k) as sp:
            result = self._solve(problem, cell_bounds, warm_start, context)
            if sp:
                diagnostics = result.diagnostics
                sp.set_attributes(
                    error=int(result.error),
                    optimal=bool(result.optimal),
                    nodes=int(result.nodes),
                    indicators=int(diagnostics.get("indicators", 0)),
                    eliminated=int(diagnostics.get("eliminated", 0)),
                    lp_iterations=int(diagnostics.get("lp_iterations", 0)),
                    warm_started_nodes=int(
                        diagnostics.get("warm_started_nodes", 0)
                    ),
                )
            return result

    def _solve(
        self,
        problem: RankingProblem,
        cell_bounds: tuple[np.ndarray, np.ndarray] | None,
        warm_start: np.ndarray | None,
        context,
    ) -> SynthesisResult:
        options = self.options
        start = time.perf_counter()
        prune_diag: dict = {}
        if options.extra.get("prune"):
            # Rank-dominance presolve: provably irrelevant tuples are dropped
            # before the MILP is built.  Valid inside any cell (a subset of
            # the simplex); see repro.core.prune for the exactness contract.
            from repro.core.prune import prune_problem

            prune_info = prune_problem(problem)
            problem = prune_info.problem
            prune_diag = {
                "pruned_tuples": prune_info.num_pruned,
                "prune_ratio": prune_info.ratio,
                "prune_original_n": prune_info.original_n,
            }
        formulation = RankHowFormulation(
            problem,
            eliminate_dominated=options.eliminate_dominated,
            error_weights=options.error_weights,
            cell_bounds=cell_bounds,
        )

        initial_incumbent = None
        if warm_start is None and options.warm_start_strategy != "none":
            warm_start = self._warm_start_weights(problem, cell_bounds)
        if context is not None:
            warm_start = self._merge_context_incumbent(
                problem, warm_start, cell_bounds, context
            )
        if warm_start is not None:
            initial_incumbent = formulation.incumbent_from_weights(
                np.asarray(warm_start, dtype=float)
            )

        initial_basis = None
        if context is not None and context.reuse_basis:
            initial_basis = context.warm_root_basis()

        gap_tolerance = 1.0 - 1e-6 if options.error_weights is None else 1e-6
        solver_options = SolverOptions(
            time_limit=options.time_limit,
            node_limit=options.node_limit,
            lp_method=options.lp_method,
            incumbent_callback=formulation.incumbent_callback,
            initial_incumbent=initial_incumbent,
            search=options.search,
            # With the plain (integer-valued) objective a gap below 1 already
            # proves optimality; weighted objectives need a tight gap.
            gap_tolerance=gap_tolerance,
            warm_start_lp=bool(options.extra.get("warm_start_lp", True)),
            node_presolve=bool(options.extra.get("node_presolve", True)),
            initial_basis=initial_basis,
        )
        solver = BranchAndBoundSolver(solver_options)
        solution = solver.solve(formulation.model)
        if context is not None:
            context.capture_root_basis(solution.root_basis)
        elapsed = time.perf_counter() - start

        if not solution.has_solution:
            return SynthesisResult(
                weights=np.full(problem.num_attributes, np.nan),
                attributes=list(problem.attributes),
                error=-1,
                objective=float("inf"),
                optimal=False,
                method="rankhow",
                solve_time=elapsed,
                nodes=solution.nodes,
                diagnostics={
                    "status": solution.status.value,
                    "k": problem.k,
                    "indicators": formulation.num_indicator_variables,
                    "eliminated": formulation.num_eliminated_indicators,
                    **prune_diag,
                },
            )

        weights = formulation.weights_from(solution.x)
        objective = formulation.objective_error(solution.x)
        true_error = problem.error_of(weights)
        optimal = solution.status is MILPStatus.OPTIMAL
        # The MILP's eps1/eps2 semantics can disagree with the tie-tolerance
        # ranking for score differences inside the safety gap; when the warm
        # start achieves a lower *true* error than the MILP incumbent, return
        # it (the solver reports the best solution it knows about).
        if warm_start is not None:
            warm = np.asarray(warm_start, dtype=float)
            warm_error = problem.error_of(warm)
            if warm_error < true_error:
                weights = warm
                true_error = warm_error
                optimal = False
        verified: bool | None = None
        if options.verify:
            verified = verify_weights(problem, weights, int(round(objective))).consistent

        return SynthesisResult(
            weights=weights,
            attributes=list(problem.attributes),
            error=int(true_error),
            objective=float(objective),
            optimal=optimal,
            method="rankhow",
            solve_time=elapsed,
            nodes=solution.nodes,
            verified=verified,
            diagnostics={
                "status": solution.status.value,
                "best_bound": solution.best_bound,
                "gap": solution.gap,
                "k": problem.k,
                "indicators": formulation.num_indicator_variables,
                "eliminated": formulation.num_eliminated_indicators,
                "milp_objective": float(objective),
                "lp_iterations": int(solution.lp_iterations),
                "warm_started_nodes": int(solution.warm_started_nodes),
                **prune_diag,
            },
        )


    def _merge_context_incumbent(
        self,
        problem: RankingProblem,
        warm_start: np.ndarray | None,
        cell_bounds: tuple[np.ndarray, np.ndarray] | None,
        context,
    ) -> np.ndarray | None:
        """Fold a parent solve's incumbent weights into the warm start.

        Only when the context opts in (``reuse_incumbent``): an extra
        incumbent tightens pruning, which can change *which* optimal solution
        a truncated search reports -- the exact-parity incremental path keeps
        it off and reuses only output-invariant artifacts.  Preference on
        ties goes to the cold path's own warm start, so enabling reuse can
        only substitute a strictly better (lower true error) incumbent.
        """
        if not context.reuse_incumbent:
            return warm_start
        candidate = context.warm_weights()
        if candidate is None:
            return warm_start
        candidate = np.asarray(candidate, dtype=float).ravel()
        if candidate.shape[0] != problem.num_attributes or not np.all(
            np.isfinite(candidate)
        ):
            return warm_start
        if cell_bounds is not None:
            lower, upper = cell_bounds
            if np.any(candidate < np.asarray(lower) - 1e-9) or np.any(
                candidate > np.asarray(upper) + 1e-9
            ):
                return warm_start
        if warm_start is None:
            return candidate
        if problem.error_of(candidate) < problem.error_of(warm_start):
            return candidate
        return warm_start

    def _warm_start_weights(
        self,
        problem: RankingProblem,
        cell_bounds: tuple[np.ndarray, np.ndarray] | None,
    ) -> np.ndarray | None:
        """Compute an initial incumbent weight vector from a primal heuristic."""
        strategy = self.options.warm_start_strategy
        if strategy == "symgd":
            # Lazy import: symgd itself builds on RankHow (with explicit warm
            # starts, so there is no recursion).
            from repro.core.symgd import SymGD, SymGDOptions

            budget = self.options.time_limit
            heuristic_options = SymGDOptions(
                cell_size=0.1,
                adaptive=False,
                max_iterations=10,
                time_limit=None if budget is None else max(budget * 0.25, 1.0),
                solver_options=RankHowOptions(
                    node_limit=500,
                    lp_method=self.options.lp_method,
                    verify=False,
                    warm_start_strategy="none",
                ),
            )
            seed = SymGD(heuristic_options).solve(problem).weights
        else:
            from repro.core.seeds import get_seed_strategy

            try:
                seed = get_seed_strategy(strategy)(problem)
            except (ValueError, KeyError):
                return None
        if not np.all(np.isfinite(seed)):
            return None
        if cell_bounds is not None:
            lower, upper = cell_bounds
            if np.any(seed < np.asarray(lower) - 1e-9) or np.any(
                seed > np.asarray(upper) + 1e-9
            ):
                return None
        return seed


def solve_exact(
    problem: RankingProblem, options: RankHowOptions | None = None
) -> SynthesisResult:
    """Deprecated convenience wrapper around the registered ``rankhow`` method.

    .. deprecated:: 1.1
        Use ``repro.get_method("rankhow").synthesize(problem, options)`` or
        :class:`repro.RankHowClient` (which adds caching and batching).
    """
    import warnings

    warnings.warn(
        "solve_exact() is deprecated; use repro.get_method('rankhow')"
        ".synthesize(problem, options) or repro.RankHowClient instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # Lazy import: the registry's adapters are built on top of this module.
    from repro.api.registry import get_method

    # Spelling the defaults out preserves this function's historical
    # exhaustive-solve semantics over the registry's service-friendly ones.
    effective = (options or RankHowOptions()).to_dict()
    return get_method("rankhow").synthesize(problem, effective)
