"""The paper's primary contribution: RankHow, SYM-GD, TREE and their plumbing."""

from repro.core.ranking import UNRANKED, Ranking
from repro.core.scoring import LinearScoringFunction, induced_ranks, normalize_weights
from repro.core.metrics import (
    evaluate_function,
    inversions,
    kendall_tau,
    per_tuple_position_error,
    position_error,
    position_error_of_function,
    weighted_position_error,
)
from repro.core.constraints import (
    ConstraintSet,
    PositionRangeConstraint,
    PrecedenceConstraint,
    WeightConstraint,
    fix_weight,
    group_weight_bound,
    max_weight,
    min_weight,
)
from repro.core.problem import RankingProblem, ToleranceSettings
from repro.core.result import SynthesisResult
from repro.core.formulation import IndicatorKey, RankHowFormulation
from repro.core.precision import (
    VerificationReport,
    choose_epsilons,
    exact_position_error,
    find_tau,
    verify_weights,
)
from repro.core.rankhow import RankHow, RankHowOptions, solve_exact
from repro.core.tree import TreeOptions, TreeSolver
from repro.core.cells import Cell, cell_around, cell_error_bounds, grid_cells
from repro.core.seeds import (
    get_seed_strategy,
    grid_seed,
    linear_regression_seed,
    ordinal_regression_seed,
    uniform_seed,
)
from repro.core.symgd import SymGD, SymGDOptions

__all__ = [
    "UNRANKED",
    "Ranking",
    "LinearScoringFunction",
    "induced_ranks",
    "normalize_weights",
    "evaluate_function",
    "inversions",
    "kendall_tau",
    "per_tuple_position_error",
    "position_error",
    "position_error_of_function",
    "weighted_position_error",
    "ConstraintSet",
    "PositionRangeConstraint",
    "PrecedenceConstraint",
    "WeightConstraint",
    "fix_weight",
    "group_weight_bound",
    "max_weight",
    "min_weight",
    "RankingProblem",
    "ToleranceSettings",
    "SynthesisResult",
    "IndicatorKey",
    "RankHowFormulation",
    "VerificationReport",
    "choose_epsilons",
    "exact_position_error",
    "find_tau",
    "verify_weights",
    "RankHow",
    "RankHowOptions",
    "solve_exact",
    "TreeOptions",
    "TreeSolver",
    "Cell",
    "cell_around",
    "cell_error_bounds",
    "grid_cells",
    "get_seed_strategy",
    "grid_seed",
    "linear_regression_seed",
    "ordinal_regression_seed",
    "uniform_seed",
    "SymGD",
    "SymGDOptions",
]
