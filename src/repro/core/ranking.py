"""The "given ranking" abstraction (Definition 1 of the paper).

A ranking assigns each tuple of a relation either a positive integer position
or the bottom symbol (here the constant :data:`UNRANKED`).  The class
validates the well-formedness conditions of Definition 1:

* exactly ``k`` tuples carry an integer position,
* some tuple has position 1,
* there are no excessive gaps: a tuple at position ``i`` has at least
  ``i - 1`` tuples ranked strictly above it,
* every other tuple is unranked (``⊥``), meaning its order does not matter
  as long as it is not placed above any ranked tuple.

Ties are allowed: ``[1, 1, 3, 3]`` means two tuples share the top spot.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["UNRANKED", "Ranking"]

#: Sentinel for the bottom symbol ``⊥`` (tuple not part of the ranked prefix).
UNRANKED: int = 0


class Ranking:
    """A validated top-k ranking over ``n`` tuples."""

    def __init__(self, positions: Sequence[int] | np.ndarray, validate: bool = True):
        """Create a ranking.

        Args:
            positions: Length-``n`` sequence; entry ``i`` is the position of
                tuple ``i`` (1-based) or :data:`UNRANKED` for ``⊥``.
            validate: Check Definition 1; disable only for trusted callers.
        """
        array = np.asarray(positions, dtype=int).copy()
        if array.ndim != 1:
            raise ValueError("positions must be one-dimensional")
        if np.any(array < 0):
            raise ValueError("positions must be >= 0 (0 denotes ⊥)")
        self._positions = array
        if validate:
            self._validate()

    def _validate(self) -> None:
        ranked = self._positions[self._positions != UNRANKED]
        if ranked.size == 0:
            raise ValueError("a ranking must rank at least one tuple")
        if np.min(ranked) != 1:
            raise ValueError("the lowest integer position must be 1")
        for position in np.unique(ranked):
            strictly_above = int(np.sum(ranked < position))
            if strictly_above < position - 1:
                raise ValueError(
                    f"excessive gap: position {position} has only "
                    f"{strictly_above} tuples ranked above it"
                )

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_ordered_indices(
        cls, ordered: Sequence[int], num_tuples: int
    ) -> "Ranking":
        """Ranking placing ``ordered[0]`` at position 1, ``ordered[1]`` at 2, ...

        Tuples not listed are unranked.
        """
        positions = np.full(num_tuples, UNRANKED, dtype=int)
        for rank, index in enumerate(ordered, start=1):
            if positions[index] != UNRANKED:
                raise ValueError(f"tuple {index} listed twice")
            positions[index] = rank
        return cls(positions)

    # -- accessors ---------------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        """Copy of the position vector (0 = ⊥)."""
        return self._positions.copy()

    @property
    def num_tuples(self) -> int:
        return int(self._positions.shape[0])

    def __len__(self) -> int:
        return self.num_tuples

    @property
    def k(self) -> int:
        """Number of ranked tuples."""
        return int(np.sum(self._positions != UNRANKED))

    def position_of(self, index: int) -> int:
        """Position of tuple ``index`` (:data:`UNRANKED` if it is ⊥)."""
        return int(self._positions[index])

    def is_ranked(self, index: int) -> bool:
        return self._positions[index] != UNRANKED

    def ranked_indices(self) -> np.ndarray:
        """Indices of the ranked tuples, sorted by (position, index)."""
        ranked = np.where(self._positions != UNRANKED)[0]
        order = np.lexsort((ranked, self._positions[ranked]))
        return ranked[order]

    def unranked_indices(self) -> np.ndarray:
        return np.where(self._positions == UNRANKED)[0]

    def has_ties(self) -> bool:
        ranked = self._positions[self._positions != UNRANKED]
        return len(np.unique(ranked)) < len(ranked)

    def tie_groups(self) -> list[list[int]]:
        """Groups of tuple indices sharing a position (singletons included)."""
        groups: dict[int, list[int]] = {}
        for index, position in enumerate(self._positions):
            if position != UNRANKED:
                groups.setdefault(int(position), []).append(index)
        return [groups[p] for p in sorted(groups)]

    def restrict_to_top(self, new_k: int) -> "Ranking":
        """Keep only tuples at positions ``<= new_k``; the rest become ⊥."""
        if new_k < 1:
            raise ValueError("new_k must be >= 1")
        positions = self._positions.copy()
        positions[positions > new_k] = UNRANKED
        return Ranking(positions)

    def as_dict(self) -> dict[int, int]:
        """Mapping tuple index -> position for the ranked tuples only."""
        return {
            int(i): int(p)
            for i, p in enumerate(self._positions)
            if p != UNRANKED
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ranking):
            return NotImplemented
        return np.array_equal(self._positions, other._positions)

    def __hash__(self) -> int:
        return hash(self._positions.tobytes())

    def __repr__(self) -> str:
        ranked = self.ranked_indices()
        preview = ", ".join(
            f"{int(i)}@{int(self._positions[i])}" for i in ranked[:8]
        )
        suffix = ", ..." if len(ranked) > 8 else ""
        return f"Ranking(k={self.k}, n={self.num_tuples}, [{preview}{suffix}])"
