"""Constraint DSL for exploring alternative scoring functions.

RankHow's distinguishing feature over plain learning techniques is that the
user can constrain the weight vector (Example 1 of the paper):

* linear constraints ``sum_i alpha_i * w_i <= alpha_0`` over the weights,
  e.g. "the coefficient of PTS must be at least 0.1" or "the defensive
  attributes together get at most 0.4";
* *position constraints* on individual tuples, e.g. "the number-1 player must
  stay at position 1" or "every top-10 player moves by at most 2 positions";
* *precedence constraints*, e.g. "Jokic must be ranked above Tatum".

Weight constraints become rows of the LP/MILP directly; position constraints
become linear constraints over the indicator variables; precedence constraints
become a single linear constraint over the weights (the score difference must
exceed the separation threshold ``eps1``).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "WeightConstraint",
    "PositionRangeConstraint",
    "PrecedenceConstraint",
    "ConstraintSet",
    "min_weight",
    "max_weight",
    "fix_weight",
    "group_weight_bound",
]


@dataclass(frozen=True)
class WeightConstraint:
    """``sum_i coefficients[A_i] * w_i  <sense>  rhs``.

    Attributes:
        coefficients: Mapping attribute name -> coefficient; attributes not
            mentioned have coefficient zero.
        sense: ``"<="``, ``">="`` or ``"=="``.
        rhs: Right-hand side constant.
        name: Optional label used in error messages and reports.
    """

    coefficients: Mapping[str, float]
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unsupported sense {self.sense!r}")
        if not self.coefficients:
            raise ValueError("a weight constraint needs at least one coefficient")

    def row(self, attributes: Sequence[str]) -> np.ndarray:
        """Dense coefficient row aligned with ``attributes``."""
        row = np.zeros(len(attributes))
        for name, value in self.coefficients.items():
            if name not in attributes:
                raise KeyError(
                    f"constraint {self.name or self.coefficients} references "
                    f"unknown attribute {name!r}"
                )
            row[list(attributes).index(name)] = float(value)
        return row

    def is_satisfied(
        self,
        weights: np.ndarray,
        attributes: Sequence[str],
        tol: float = 1e-9,
    ) -> bool:
        value = float(self.row(attributes) @ np.asarray(weights, dtype=float))
        if self.sense == "<=":
            return value <= self.rhs + tol
        if self.sense == ">=":
            return value >= self.rhs - tol
        return abs(value - self.rhs) <= tol

    def to_dict(self) -> dict:
        return {
            "coefficients": {name: float(v) for name, v in self.coefficients.items()},
            "sense": self.sense,
            "rhs": float(self.rhs),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "WeightConstraint":
        return cls(
            coefficients=dict(data["coefficients"]),
            sense=data["sense"],
            rhs=float(data["rhs"]),
            name=data.get("name", ""),
        )


@dataclass(frozen=True)
class PositionRangeConstraint:
    """Tuple ``tuple_index`` must land at a position in ``[min_position, max_position]``.

    Only meaningful for tuples that are ranked in the given ranking (the MILP
    has indicator variables only for those).  Example 1's "no top-10 player
    moves by more than 2 positions" is a collection of these.
    """

    tuple_index: int
    min_position: int
    max_position: int

    def __post_init__(self) -> None:
        if self.min_position < 1:
            raise ValueError("min_position must be >= 1")
        if self.max_position < self.min_position:
            raise ValueError("max_position must be >= min_position")

    def to_dict(self) -> dict:
        return {
            "tuple_index": int(self.tuple_index),
            "min_position": int(self.min_position),
            "max_position": int(self.max_position),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PositionRangeConstraint":
        return cls(
            tuple_index=int(data["tuple_index"]),
            min_position=int(data["min_position"]),
            max_position=int(data["max_position"]),
        )


@dataclass(frozen=True)
class PrecedenceConstraint:
    """Tuple ``above`` must be ranked strictly above tuple ``below``."""

    above: int
    below: int

    def __post_init__(self) -> None:
        if self.above == self.below:
            raise ValueError("a tuple cannot precede itself")

    def to_dict(self) -> dict:
        return {"above": int(self.above), "below": int(self.below)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PrecedenceConstraint":
        return cls(above=int(data["above"]), below=int(data["below"]))


@dataclass
class ConstraintSet:
    """A conjunction of weight, position-range, and precedence constraints."""

    weight_constraints: list[WeightConstraint] = field(default_factory=list)
    position_constraints: list[PositionRangeConstraint] = field(default_factory=list)
    precedence_constraints: list[PrecedenceConstraint] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------

    def add(self, constraint) -> "ConstraintSet":
        """Add any supported constraint object; returns ``self`` for chaining."""
        if isinstance(constraint, WeightConstraint):
            self.weight_constraints.append(constraint)
        elif isinstance(constraint, PositionRangeConstraint):
            self.position_constraints.append(constraint)
        elif isinstance(constraint, PrecedenceConstraint):
            self.precedence_constraints.append(constraint)
        else:
            raise TypeError(f"unsupported constraint type: {type(constraint)!r}")
        return self

    def __len__(self) -> int:
        return (
            len(self.weight_constraints)
            + len(self.position_constraints)
            + len(self.precedence_constraints)
        )

    def weight_rows(
        self, attributes: Sequence[str]
    ) -> list[tuple[np.ndarray, str, float]]:
        """All weight constraints as ``(row, sense, rhs)`` triples."""
        return [
            (c.row(attributes), c.sense, c.rhs) for c in self.weight_constraints
        ]

    def weights_satisfied(
        self,
        weights: np.ndarray,
        attributes: Sequence[str],
        tol: float = 1e-9,
    ) -> bool:
        """Check only the weight constraints against a candidate vector."""
        return all(
            c.is_satisfied(weights, attributes, tol) for c in self.weight_constraints
        )

    def copy(self) -> "ConstraintSet":
        return ConstraintSet(
            list(self.weight_constraints),
            list(self.position_constraints),
            list(self.precedence_constraints),
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation (inverse: :meth:`from_dict`)."""
        return {
            "weight": [c.to_dict() for c in self.weight_constraints],
            "position": [c.to_dict() for c in self.position_constraints],
            "precedence": [c.to_dict() for c in self.precedence_constraints],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ConstraintSet":
        return cls(
            [WeightConstraint.from_dict(c) for c in data.get("weight", ())],
            [PositionRangeConstraint.from_dict(c) for c in data.get("position", ())],
            [PrecedenceConstraint.from_dict(c) for c in data.get("precedence", ())],
        )


# -- convenience constructors ----------------------------------------------------


def min_weight(attribute: str, value: float) -> WeightConstraint:
    """``w[attribute] >= value`` (e.g. "points must matter at least 0.1")."""
    return WeightConstraint({attribute: 1.0}, ">=", value, name=f"{attribute}>={value}")


def max_weight(attribute: str, value: float) -> WeightConstraint:
    """``w[attribute] <= value``."""
    return WeightConstraint({attribute: 1.0}, "<=", value, name=f"{attribute}<={value}")


def fix_weight(attribute: str, value: float) -> WeightConstraint:
    """``w[attribute] == value``."""
    return WeightConstraint({attribute: 1.0}, "==", value, name=f"{attribute}=={value}")


def group_weight_bound(
    attributes: Sequence[str], sense: str, value: float
) -> WeightConstraint:
    """Bound the summed weight of a group, e.g. all defensive skills."""
    return WeightConstraint(
        {name: 1.0 for name in attributes},
        sense,
        value,
        name=f"sum({','.join(attributes)}){sense}{value}",
    )
