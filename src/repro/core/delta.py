"""First-class problem edits: :class:`ProblemDelta` and its concrete kinds.

RankHow's headline use case is interactive: an analyst tweaks the given
ranking, drops a tuple, re-weights an attribute column, or tightens the
tolerance and expects a fresh weight vector immediately.  A
:class:`ProblemDelta` captures one such edit as a small, serializable value
object that every layer of the stack understands:

* the **data layer** applies it through :class:`~repro.data.relation.Relation`'s
  structural-sharing edit constructors,
* the **core layer** turns ``parent.apply_delta(delta)`` into a new
  :class:`~repro.core.problem.RankingProblem` whose fingerprint is *composed*
  from the parent's digest and the delta's digest (no re-hash of the full
  attribute matrix, and equal edit chains dedupe byte-for-byte),
* the **engine** uses the parent/child fingerprint relation for its
  delta-aware cache fallback (exact hit -> parent artifacts -> cold),
* the **api/service layers** ship deltas over the wire
  (``base_fingerprint`` + ``deltas`` on a request, stateful server sessions).

Every delta is a pure function of the parent problem: ``apply`` never mutates
its input (relations and problems are enforced-immutable) and two
applications of the same delta to the same parent produce identical content.
The pure whole-problem transforms that :mod:`repro.scenarios` replays
(:func:`permute_problem`, :func:`rescale_problem_by`) live here too, so the
scenario generator and the metamorphic invariants share one implementation.
"""

from __future__ import annotations

import abc
import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields

import numpy as np

from repro.core.constraints import (
    ConstraintSet,
    PositionRangeConstraint,
    PrecedenceConstraint,
)
from repro.core.problem import RankingProblem, ToleranceSettings
from repro.core.ranking import Ranking
from repro.data.relation import Relation

__all__ = [
    "ProblemDelta",
    "AddTuplesDelta",
    "DropTuplesDelta",
    "ReweightDelta",
    "RescaleDelta",
    "PermuteTuplesDelta",
    "ToleranceDelta",
    "ConstraintDelta",
    "RerankDelta",
    "delta_from_dict",
    "deltas_from_dicts",
    "compose_fingerprints",
    "permute_problem",
    "rescale_problem_by",
]


def _canonical_json(value) -> str:
    """Deterministic JSON encoding of a delta payload (sorted, sanitized)."""
    # Local import: repro.core.result owns the jsonable sanitizer; delta
    # payloads may carry numpy scalars from callers that built them from
    # array slices.
    from repro.core.result import jsonable

    return json.dumps(jsonable(value), sort_keys=True, separators=(",", ":"))


def compose_fingerprints(parent_fingerprint: str, delta_fingerprint: str) -> str:
    """Digest of "the problem addressed by ``parent`` after this delta".

    The composed digest is a sound cache key: the parent fingerprint
    determines the parent's content and the delta fingerprint determines the
    transformation, so together they determine the child's content -- without
    re-hashing the child's full attribute matrix.  Equal edit chains applied
    to equal parents therefore collide (dedupe) by construction.  The
    ``delta:`` domain prefix keeps composed digests disjoint from the
    content digests of cold-built problems.
    """
    h = hashlib.sha256()
    h.update(b"delta:")
    h.update(parent_fingerprint.encode())
    h.update(b"+")
    h.update(delta_fingerprint.encode())
    return h.hexdigest()


#: Registry of wire ``kind`` tags -> delta classes (see :func:`delta_from_dict`).
_DELTA_KINDS: dict[str, type] = {}


def _register_delta(cls):
    _DELTA_KINDS[cls.kind] = cls
    return cls


class ProblemDelta(abc.ABC):
    """One edit of a :class:`RankingProblem`, as a serializable value object.

    Subclasses define a ``kind`` tag (the wire discriminator), the payload
    fields, and :meth:`apply`.  Deltas are immutable dataclasses: equality is
    structural and :meth:`fingerprint` is a content digest, so the same edit
    expressed twice addresses the same cache entries.
    """

    #: Wire discriminator; unique per concrete class.
    kind: str = ""

    #: Whether applying this delta can change the ``(n, m)`` ranking-attribute
    #: matrix.  ``apply_delta`` shares the parent's memoized matrix with the
    #: child when it cannot.
    preserves_matrix: bool = False

    @abc.abstractmethod
    def apply(self, problem: RankingProblem) -> RankingProblem:
        """Pure application: a new problem, the parent untouched."""

    def payload(self) -> dict:
        """Wire-format fields (everything except the ``kind`` tag)."""
        return {
            f.name: _wire_value(getattr(self, f.name)) for f in fields(self)
        }

    def to_dict(self) -> dict:
        """JSON-serializable representation (inverse: :func:`delta_from_dict`)."""
        return {"kind": self.kind, **self.payload()}

    def fingerprint(self) -> str:
        """SHA-256 content digest of this delta (kind + canonical payload)."""
        h = hashlib.sha256()
        h.update(b"problem-delta:")
        h.update(self.kind.encode())
        h.update(b":")
        h.update(_canonical_json(self.payload()).encode())
        return h.hexdigest()

    @classmethod
    def from_payload(cls, payload: Mapping) -> "ProblemDelta":
        """Rebuild from wire payload; concrete classes override as needed."""
        return cls(**payload)

    def describe(self) -> str:
        """One-line human-readable summary (session logs, CLI demos)."""
        return f"{self.kind}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


def _wire_value(value):
    """Payload values as plain JSON types (arrays/tuples become lists)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, tuple):
        return [_wire_value(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _wire_value(v) for k, v in value.items()}
    if isinstance(value, np.generic):
        return value.item()
    return value


def _columns_payload(columns: Mapping[str, Sequence]) -> dict:
    """Normalize a per-column mapping to ``{name: tuple(values)}``."""
    normalized = {}
    for name, values in columns.items():
        array = np.asarray(values)
        if array.ndim != 1:
            raise ValueError(f"column {name!r} must be one-dimensional")
        normalized[str(name)] = tuple(array.tolist())
    return normalized


# -- concrete deltas ----------------------------------------------------------------


@_register_delta
@dataclass(frozen=True)
class AddTuplesDelta(ProblemDelta):
    """Append tuples to the relation (and their given positions, if ranked).

    Attributes:
        columns: Per-column values of the new rows; every column of the
            relation must be present and all value lists equal-length.
        positions: Given-ranking position of each appended tuple
            (:data:`~repro.core.ranking.UNRANKED` = 0 for "not ranked", the
            common case of adding candidate tuples).  Omitted positions
            default to unranked.
    """

    kind = "add_tuples"
    columns: Mapping[str, tuple] = field(default_factory=dict)
    positions: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", _columns_payload(self.columns))
        lengths = {len(v) for v in self.columns.values()}
        if not self.columns or lengths == {0}:
            raise ValueError("add_tuples needs at least one new row")
        if len(lengths) != 1:
            raise ValueError("all columns must add the same number of rows")
        count = lengths.pop()
        positions = tuple(int(p) for p in self.positions)
        if not positions:
            positions = (0,) * count
        if len(positions) != count:
            raise ValueError(
                f"positions has {len(positions)} entries for {count} new rows"
            )
        object.__setattr__(self, "positions", positions)

    def apply(self, problem: RankingProblem) -> RankingProblem:
        relation = problem.relation.with_rows(self.columns)
        positions = np.concatenate(
            [problem.ranking.positions, np.asarray(self.positions, dtype=int)]
        )
        return RankingProblem(
            relation,
            Ranking(positions),
            attributes=problem.attributes,
            constraints=problem.constraints.copy(),
            tolerances=problem.tolerances,
        )

    def describe(self) -> str:
        return f"add_tuples(+{len(self.positions)})"


@_register_delta
@dataclass(frozen=True)
class DropTuplesDelta(ProblemDelta):
    """Remove tuples by index; tuple-indexed constraints are remapped.

    Constraints that reference a dropped tuple are removed (matching
    ``scenarios.mutate(kind="drop_unranked")``); the surviving given
    positions are kept verbatim, so dropping a *ranked* tuple raises when
    the remaining ranking violates Definition 1 (no silent re-ranking).
    """

    kind = "drop_tuples"
    indices: tuple = ()

    def __post_init__(self) -> None:
        indices = tuple(sorted({int(i) for i in self.indices}))
        if not indices:
            raise ValueError("drop_tuples needs at least one index")
        object.__setattr__(self, "indices", indices)

    def apply(self, problem: RankingProblem) -> RankingProblem:
        n = problem.num_tuples
        dropped = np.asarray(self.indices, dtype=int)
        if dropped.min() < 0 or dropped.max() >= n:
            raise IndexError(f"drop index out of range for {n} tuples")
        drop_set = set(self.indices)
        keep = np.asarray([i for i in range(n) if i not in drop_set], dtype=int)
        if keep.size == 0:
            raise ValueError("cannot drop every tuple")

        def shift(index: int) -> int:
            return index - int(np.searchsorted(dropped, index))

        constraints = ConstraintSet(
            list(problem.constraints.weight_constraints),
            [
                PositionRangeConstraint(
                    shift(c.tuple_index), c.min_position, c.max_position
                )
                for c in problem.constraints.position_constraints
                if c.tuple_index not in drop_set
            ],
            [
                PrecedenceConstraint(shift(c.above), shift(c.below))
                for c in problem.constraints.precedence_constraints
                if c.above not in drop_set and c.below not in drop_set
            ],
        )
        return RankingProblem(
            problem.relation.take(keep),
            Ranking(problem.ranking.positions[keep]),
            attributes=problem.attributes,
            constraints=constraints,
            tolerances=problem.tolerances,
        )

    def describe(self) -> str:
        return f"drop_tuples({list(self.indices)})"


@_register_delta
@dataclass(frozen=True)
class ReweightDelta(ProblemDelta):
    """Replace the values of one or more columns (jitter, manual re-weighting).

    The given ranking, constraints, and tolerances are untouched; only the
    named columns' values change, so a previously perfect fit may become
    imperfect -- exactly the ``jitter`` mutation's semantics.
    """

    kind = "reweight"
    columns: Mapping[str, tuple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", _columns_payload(self.columns))
        if not self.columns:
            raise ValueError("reweight needs at least one column")

    def apply(self, problem: RankingProblem) -> RankingProblem:
        relation = problem.relation
        for name, values in self.columns.items():
            if name not in relation:
                raise KeyError(f"unknown column {name!r}")
            if len(values) != relation.num_tuples:
                raise ValueError(
                    f"column {name!r} has {len(values)} values for "
                    f"{relation.num_tuples} tuples"
                )
            relation = relation.with_column(name, np.asarray(values, dtype=float))
        return RankingProblem(
            relation,
            Ranking(problem.ranking.positions, validate=False),
            attributes=problem.attributes,
            constraints=problem.constraints.copy(),
            tolerances=problem.tolerances,
        )

    def describe(self) -> str:
        return f"reweight({sorted(self.columns)})"


@_register_delta
@dataclass(frozen=True)
class RescaleDelta(ProblemDelta):
    """Scale every ranking attribute AND the tolerances by one factor.

    Semantically neutral (scores scale uniformly), mirroring the ``rescale``
    mutation and the metamorphic rescaling invariant.
    """

    kind = "rescale"
    factor: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "factor", float(self.factor))
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def apply(self, problem: RankingProblem) -> RankingProblem:
        return rescale_problem_by(problem, self.factor)

    def describe(self) -> str:
        return f"rescale(x{self.factor:g})"


@_register_delta
@dataclass(frozen=True)
class PermuteTuplesDelta(ProblemDelta):
    """Re-order the tuples; ranking and tuple-indexed constraints follow."""

    kind = "permute_tuples"
    order: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "order", tuple(int(i) for i in np.asarray(self.order).ravel())
        )
        if not self.order:
            raise ValueError("permute_tuples needs a non-empty order")

    def apply(self, problem: RankingProblem) -> RankingProblem:
        return permute_problem(problem, np.asarray(self.order, dtype=int))

    def describe(self) -> str:
        return f"permute_tuples(n={len(self.order)})"


@_register_delta
@dataclass(frozen=True)
class ToleranceDelta(ProblemDelta):
    """Replace the tie / indicator tolerances (e.g. tighten ``eps``)."""

    kind = "tolerance"
    preserves_matrix = True
    tie_eps: float = 0.0
    eps1: float = 0.0
    eps2: float = 0.0

    def __post_init__(self) -> None:
        # Validate eagerly: a session edit with inverted eps1/eps2 should
        # fail at edit time, not at the next solve.
        settings = ToleranceSettings(
            tie_eps=float(self.tie_eps), eps1=float(self.eps1), eps2=float(self.eps2)
        )
        object.__setattr__(self, "tie_eps", settings.tie_eps)
        object.__setattr__(self, "eps1", settings.eps1)
        object.__setattr__(self, "eps2", settings.eps2)

    @classmethod
    def from_settings(cls, tolerances: ToleranceSettings) -> "ToleranceDelta":
        return cls(
            tie_eps=tolerances.tie_eps, eps1=tolerances.eps1, eps2=tolerances.eps2
        )

    def apply(self, problem: RankingProblem) -> RankingProblem:
        return problem.with_tolerances(
            ToleranceSettings(tie_eps=self.tie_eps, eps1=self.eps1, eps2=self.eps2)
        )

    def describe(self) -> str:
        return f"tolerance(eps={self.tie_eps:g})"


@_register_delta
@dataclass(frozen=True)
class ConstraintDelta(ProblemDelta):
    """Add and/or remove constraints (both sides in ConstraintSet wire form).

    ``remove`` entries are matched structurally against the problem's current
    constraints; removing a constraint that is not present raises (a session
    edit that silently removes nothing would be a confusing no-op).
    """

    kind = "constraints"
    preserves_matrix = True
    add: Mapping = field(default_factory=dict)
    remove: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        add = self.add.to_dict() if isinstance(self.add, ConstraintSet) else dict(self.add or {})
        remove = (
            self.remove.to_dict()
            if isinstance(self.remove, ConstraintSet)
            else dict(self.remove or {})
        )
        # Round-trip through the wire form for canonical payloads (and to
        # fail fast on malformed constraint dicts).
        add_set = ConstraintSet.from_dict(add)
        remove_set = ConstraintSet.from_dict(remove)
        if not len(add_set) and not len(remove_set):
            raise ValueError("constraints delta adds and removes nothing")
        object.__setattr__(self, "add", add_set.to_dict())
        object.__setattr__(self, "remove", remove_set.to_dict())

    def apply(self, problem: RankingProblem) -> RankingProblem:
        add_set = ConstraintSet.from_dict(self.add)
        remove_set = ConstraintSet.from_dict(self.remove)
        current = problem.constraints

        def prune(existing: list, to_remove: list, label: str) -> list:
            remaining = list(existing)
            for constraint in to_remove:
                try:
                    remaining.remove(constraint)
                except ValueError:
                    raise ValueError(
                        f"cannot remove {label} constraint {constraint!r}: "
                        "not present on the problem"
                    ) from None
            return remaining

        merged = ConstraintSet(
            prune(current.weight_constraints, remove_set.weight_constraints, "weight")
            + list(add_set.weight_constraints),
            prune(
                current.position_constraints,
                remove_set.position_constraints,
                "position",
            )
            + list(add_set.position_constraints),
            prune(
                current.precedence_constraints,
                remove_set.precedence_constraints,
                "precedence",
            )
            + list(add_set.precedence_constraints),
        )
        return problem.with_constraints(merged)

    def describe(self) -> str:
        add_n = sum(len(v) for v in self.add.values())
        remove_n = sum(len(v) for v in self.remove.values())
        return f"constraints(+{add_n}/-{remove_n})"


@_register_delta
@dataclass(frozen=True)
class RerankDelta(ProblemDelta):
    """Replace the given ranking ``pi`` (the analyst re-ordered the top-k)."""

    kind = "rerank"
    preserves_matrix = True
    positions: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "positions",
            tuple(int(p) for p in np.asarray(self.positions).ravel()),
        )
        if not self.positions:
            raise ValueError("rerank needs a positions vector")

    def apply(self, problem: RankingProblem) -> RankingProblem:
        if len(self.positions) != problem.num_tuples:
            raise ValueError(
                f"rerank has {len(self.positions)} positions for "
                f"{problem.num_tuples} tuples"
            )
        return RankingProblem(
            problem.relation,
            Ranking(np.asarray(self.positions, dtype=int)),
            attributes=problem.attributes,
            constraints=problem.constraints.copy(),
            tolerances=problem.tolerances,
        )

    def describe(self) -> str:
        k = sum(1 for p in self.positions if p != 0)
        return f"rerank(k={k})"


# -- wire dispatch ------------------------------------------------------------------


def delta_from_dict(data: Mapping) -> ProblemDelta:
    """Rebuild any registered delta from its wire dict (inverse of ``to_dict``)."""
    if isinstance(data, ProblemDelta):
        return data
    try:
        kind = data["kind"]
    except (KeyError, TypeError):
        raise ValueError(f"delta dict needs a 'kind' tag, got {data!r}") from None
    try:
        cls = _DELTA_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown delta kind {kind!r}; registered kinds: "
            f"{sorted(_DELTA_KINDS)}"
        ) from None
    payload = {k: v for k, v in data.items() if k != "kind"}
    return cls.from_payload(payload)


def deltas_from_dicts(items: Sequence) -> list[ProblemDelta]:
    """Convenience: a whole wire chain back into delta objects."""
    return [delta_from_dict(item) for item in items]


# -- pure whole-problem transforms --------------------------------------------------


def permute_problem(problem: RankingProblem, order: np.ndarray) -> RankingProblem:
    """The same problem with its tuples re-ordered by ``order``.

    ``order[j]`` is the old index of the tuple placed at new position ``j``.
    The given ranking and every tuple-indexed constraint are remapped, so
    the transformed problem is semantically identical: any weight vector
    scores the permuted problem with exactly the same position error.
    """
    order = np.asarray(order, dtype=int)
    n = problem.num_tuples
    if sorted(order.tolist()) != list(range(n)):
        raise ValueError("order must be a permutation of range(num_tuples)")
    new_of_old = np.empty(n, dtype=int)
    new_of_old[order] = np.arange(n)

    relation = problem.relation.take(order)
    positions = problem.ranking.positions[order]
    constraints = ConstraintSet(
        list(problem.constraints.weight_constraints),
        [
            PositionRangeConstraint(
                int(new_of_old[c.tuple_index]), c.min_position, c.max_position
            )
            for c in problem.constraints.position_constraints
        ],
        [
            PrecedenceConstraint(int(new_of_old[c.above]), int(new_of_old[c.below]))
            for c in problem.constraints.precedence_constraints
        ],
    )
    return RankingProblem(
        relation,
        Ranking(positions),
        attributes=problem.attributes,
        constraints=constraints,
        tolerances=problem.tolerances,
    )


def rescale_problem_by(problem: RankingProblem, factor: float) -> RankingProblem:
    """Scale every ranking attribute AND the tolerances by ``factor``.

    Scores under any fixed weight vector scale by the same factor, so the
    induced ranking -- and therefore the position error -- is invariant.
    Powers of two make the float scaling exact (no rounding at tolerance
    boundaries); the metamorphic invariant uses those.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    columns = {
        name: problem.relation.column(name)
        for name in problem.relation.attribute_names
    }
    for name in problem.attributes:
        columns[name] = columns[name].astype(float) * factor
    relation = Relation(columns, key=problem.relation.key)
    tolerances = ToleranceSettings(
        tie_eps=problem.tolerances.tie_eps * factor,
        eps1=problem.tolerances.eps1 * factor,
        eps2=problem.tolerances.eps2 * factor,
    )
    return RankingProblem(
        relation,
        Ranking(problem.ranking.positions, validate=False),
        attributes=problem.attributes,
        constraints=problem.constraints.copy(),
        tolerances=tolerances,
    )
