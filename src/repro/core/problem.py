"""The OPT problem instance (Definition 4).

A :class:`RankingProblem` bundles everything a synthesis run needs:

* the relation and the ranking attributes to use,
* the given ranking ``pi`` (a validated :class:`~repro.core.ranking.Ranking`),
* the constraint set on the weights / positions,
* the tie tolerance ``eps`` and the derived solver thresholds ``eps1`` /
  ``eps2`` (Section V-A).

The class also offers the evaluation primitives every algorithm shares:
scoring a weight vector, computing its induced ranking, and its
position-based error.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core import chunking
from repro.core.constraints import ConstraintSet
from repro.core.metrics import position_error
from repro.core.ranking import UNRANKED, Ranking
from repro.core.scoring import LinearScoringFunction, induced_ranks, induced_ranks_many
from repro.data.relation import Relation

__all__ = ["ToleranceSettings", "RankingProblem"]


@dataclass(frozen=True)
class ToleranceSettings:
    """Numerical tolerances of Section V-A.

    The defaults follow the paper's synthetic-data setting (``eps = 5e-6``,
    ``eps1 = 1e-5``, ``eps2 = 0``), which assumes attribute values on the
    order of [0, 1]; they keep boundary solutions (weight vectors sitting
    exactly on an indicator hyperplane) interpreted consistently by the solver
    and by the tie-tolerant induced ranking.  Use
    :meth:`ToleranceSettings.from_precision` to derive settings for other
    scales.

    Attributes:
        tie_eps: ``eps`` from Definition 2 -- scores within this distance are
            tied in the induced ranking.
        eps1: Score difference at or above which an indicator must be 1.
        eps2: Score difference at or below which an indicator must be 0.
    """

    tie_eps: float = 5e-6
    eps1: float = 1e-5
    eps2: float = 0.0

    def __post_init__(self) -> None:
        if self.tie_eps < 0:
            raise ValueError("tie_eps must be non-negative")
        if self.eps1 <= self.eps2:
            raise ValueError("eps1 must be strictly greater than eps2")

    @classmethod
    def from_precision(
        cls, tie_eps: float, tau: float, tau_plus: float | None = None
    ) -> "ToleranceSettings":
        """Apply the paper's recipe: ``eps2 = eps - tau``, ``eps1 = eps + tau+``."""
        if tau < 0:
            raise ValueError("tau must be non-negative")
        if tau_plus is None:
            tau_plus = tau * (1.0 + 1e-6) + 1e-12
        if tau_plus <= tau:
            raise ValueError("tau_plus must exceed tau")
        return cls(tie_eps=tie_eps, eps1=tie_eps + tau_plus, eps2=tie_eps - tau)

    def to_dict(self) -> dict:
        return {
            "tie_eps": float(self.tie_eps),
            "eps1": float(self.eps1),
            "eps2": float(self.eps2),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ToleranceSettings":
        return cls(
            tie_eps=float(data["tie_eps"]),
            eps1=float(data["eps1"]),
            eps2=float(data["eps2"]),
        )


class RankingProblem:
    """An instance of OPT: relation + given ranking + constraints + tolerances."""

    def __init__(
        self,
        relation: Relation,
        ranking: Ranking,
        attributes: Sequence[str] | None = None,
        constraints: ConstraintSet | None = None,
        tolerances: ToleranceSettings | None = None,
    ) -> None:
        """Create a problem instance.

        Args:
            relation: The input relation ``R``.
            ranking: The given ranking ``pi`` over the tuples of ``relation``.
            attributes: Ranking attributes ``A1..Am``; defaults to every
                numeric attribute of the relation.
            constraints: Constraints on the weights / positions (defaults to
                only the implicit simplex constraints ``w >= 0``, ``sum w = 1``).
            tolerances: Tie and indicator thresholds; defaults keep ties off
                and use a small separation gap.
        """
        if ranking.num_tuples != relation.num_tuples:
            raise ValueError(
                "ranking and relation disagree on the number of tuples "
                f"({ranking.num_tuples} vs {relation.num_tuples})"
            )
        self.relation = relation
        self.ranking = ranking
        self.attributes = list(
            attributes if attributes is not None else relation.numeric_attribute_names()
        )
        if not self.attributes:
            raise ValueError("the problem needs at least one ranking attribute")
        self.constraints = constraints if constraints is not None else ConstraintSet()
        self.tolerances = tolerances if tolerances is not None else ToleranceSettings()
        # The stacked attribute matrix is materialized lazily (the relation
        # memoizes it per attribute tuple, read-only); validate the names
        # eagerly so a bad attribute still fails at construction time.
        for name in self.attributes:
            column = relation.column(name)
            if not np.issubdtype(column.dtype, np.number):
                raise TypeError(f"attribute {name!r} is not numeric")
        self._matrix_memo: np.ndarray | None = None
        # SHA-256 content digest, memoized by fingerprint() on first use and
        # never invalidated -- problems are enforced-immutable (every
        # "mutation" returns a new instance; see apply_delta()).
        self._fingerprint: str | None = None
        self._validate_constraints()

    def _validate_constraints(self) -> None:
        for constraint in self.constraints.weight_constraints:
            for attribute in constraint.coefficients:
                if attribute not in self.attributes:
                    raise KeyError(
                        f"weight constraint references unknown attribute {attribute!r}"
                    )
        positions = self.ranking.positions
        for constraint in self.constraints.position_constraints:
            index = constraint.tuple_index
            if not 0 <= index < self.relation.num_tuples:
                raise IndexError(f"position constraint on unknown tuple {index}")
            if positions[index] == UNRANKED:
                raise ValueError(
                    "position constraints are only supported for tuples ranked "
                    f"in the given ranking (tuple {index} is unranked)"
                )
        for constraint in self.constraints.precedence_constraints:
            for index in (constraint.above, constraint.below):
                if not 0 <= index < self.relation.num_tuples:
                    raise IndexError(f"precedence constraint on unknown tuple {index}")

    # -- basic properties ---------------------------------------------------------

    @property
    def num_tuples(self) -> int:
        return self.relation.num_tuples

    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    @property
    def k(self) -> int:
        return self.ranking.k

    @property
    def matrix(self) -> np.ndarray:
        """The ``(n, m)`` ranking-attribute matrix (cached, read-only).

        Frozen alongside the relation's columns: :meth:`fingerprint`
        memoizes a content digest of this matrix, so an in-place write must
        raise instead of silently invalidating cache entries keyed on the
        digest.
        """
        memo = self._matrix_memo
        if memo is None:
            memo = self.relation.matrix(self.attributes)
            if memo.flags.writeable:
                memo.flags.writeable = False
            self._matrix_memo = memo
        return memo

    def _eval_weights(self, weights: np.ndarray) -> np.ndarray:
        """Weights cast to the matrix's evaluation dtype.

        Default float64 relations evaluate exactly as before; opt-in
        float32 relations score in float32 so the big ``(.., n)`` score
        transients (and the matmul itself) stay in the narrow dtype
        instead of silently upcasting a full copy of the matrix.
        """
        dtype = self.matrix.dtype
        if dtype != np.float64:
            return weights.astype(dtype)
        return weights

    def top_k_indices(self) -> np.ndarray:
        """Indices of the ranked tuples, ordered by given position."""
        return self.ranking.ranked_indices()

    # -- evaluation ----------------------------------------------------------------

    def scoring_function(self, weights: np.ndarray) -> LinearScoringFunction:
        """Wrap a weight vector as a scoring function over this problem's attributes."""
        return LinearScoringFunction(weights, self.attributes, normalize=False)

    def scores(self, weights: np.ndarray) -> np.ndarray:
        """Scores of every tuple under a weight vector (no rescaling applied).

        Baselines such as linear regression may produce negative or
        unnormalized weights; scores are evaluated exactly as given because
        rescaling would change which score differences exceed the tie
        tolerance.
        """
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.shape[0] != self.num_attributes:
            raise ValueError("weight vector length does not match attribute count")
        return self.matrix @ self._eval_weights(weights)

    def induced_positions(self, weights: np.ndarray) -> np.ndarray:
        """Ranks of every tuple under the weight vector (tie tolerance applied)."""
        return induced_ranks(self.scores(weights), self.tolerances.tie_eps)

    def error_of(self, weights: np.ndarray) -> int:
        """Position-based error of a weight vector (Definition 3)."""
        return position_error(self.ranking, self.induced_positions(weights))

    def errors_of_many(
        self, weights_matrix: np.ndarray, chunk_rows: int | None = None
    ) -> np.ndarray:
        """Position-based error of every row of a ``(num_candidates, m)`` matrix.

        One matrix program instead of ``num_candidates`` Python-level
        evaluations: a single score matmul, row-batched tie-tolerant ranking
        (:func:`~repro.core.scoring.induced_ranks_many`), and a vectorized
        error reduction.  Used by the matrix SYM-GD multi-seed path and the
        sampling baseline-style sweeps.

        When the ``(num_candidates, n)`` score transients would exceed the
        data-plane memory budget (:mod:`repro.core.chunking`) -- or when
        ``chunk_rows`` forces it -- candidates are evaluated in blocked
        streaming mode: per block, one score matmul, per-row sort, and the
        ranked-positions-only ``searchsorted`` reduction.  Candidate rows
        are independent and the per-position rank formula is elementwise,
        so the streamed errors are bitwise-equal to the single-shot path
        (asserted by the ``streaming_parity`` oracle invariant).
        """
        weights_matrix = np.asarray(weights_matrix, dtype=float)
        if weights_matrix.ndim != 2 or weights_matrix.shape[1] != self.num_attributes:
            raise ValueError(
                f"weights matrix must have shape (num_candidates, "
                f"{self.num_attributes}), got {weights_matrix.shape}"
            )
        matrix = self.matrix
        weights_matrix = self._eval_weights(weights_matrix)
        positions = self.ranking.positions
        ranked = np.where(positions != UNRANKED)[0]
        given = positions[ranked]
        num_candidates = weights_matrix.shape[0]
        n = self.num_tuples
        # Per candidate: a score row (matrix dtype), plus the float64
        # ranking transients (cast, sort, tie-shifted copy) and the int
        # rank row the single-shot path materializes.
        row_bytes = n * (matrix.itemsize + 8 * 4)
        rows = chunking.chunk_rows_for(row_bytes, num_candidates, chunk_rows)
        if rows >= num_candidates:
            scores = weights_matrix @ matrix.T
            ranks = induced_ranks_many(scores, self.tolerances.tie_eps)
            return np.sum(np.abs(ranks[:, ranked] - given[None, :]), axis=1).astype(
                int
            )
        chunking.record_chunked_eval(rows * row_bytes)
        tie_eps = self.tolerances.tie_eps
        errors = np.empty(num_candidates, dtype=int)
        for start in range(0, num_candidates, rows):
            # The float64 cast mirrors induced_ranks_many's entry exactly,
            # so float32 relations rank identically on both paths.
            block = np.asarray(
                weights_matrix[start : start + rows] @ matrix.T, dtype=float
            )
            sorted_rows = np.sort(block, axis=1)
            shifted = block + tie_eps
            for i in range(block.shape[0]):
                beats = n - np.searchsorted(
                    sorted_rows[i], shifted[i, ranked], side="right"
                )
                errors[start + i] = int(np.sum(np.abs(beats + 1 - given)))
        return errors

    def fingerprint(self) -> str:
        """Memoized SHA-256 content digest of this problem instance.

        Computed once per object (the matrix hash dominates the cost of a
        cache lookup otherwise) and never invalidated: the instance is
        immutable by convention.  Two independently built, semantically
        identical problems share the same digest -- see
        :func:`repro.engine.fingerprint.fingerprint_problem`, which this
        memoizes.
        """
        if self._fingerprint is None:
            from repro.engine.fingerprint import compute_problem_digest

            self._fingerprint = compute_problem_digest(self)
        return self._fingerprint

    def weights_feasible(self, weights: np.ndarray, tol: float = 1e-7) -> bool:
        """Check the weight constraints (simplex constraints included)."""
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.shape[0] != self.num_attributes:
            return False
        if np.any(weights < -tol) or abs(float(weights.sum()) - 1.0) > max(tol, 1e-6):
            return False
        return self.constraints.weights_satisfied(weights, self.attributes, tol)

    def apply_delta(self, deltas) -> "RankingProblem":
        """Apply one edit (or a chain of edits) and return the new problem.

        ``deltas`` is a single :class:`~repro.core.delta.ProblemDelta` or a
        sequence of them, applied in order.  Two things make this cheaper
        than rebuilding from scratch:

        * **Composed fingerprints** -- the child's memoized digest is
          ``compose(parent_digest, delta_digest)`` instead of a re-hash of
          the full attribute matrix, so fingerprinting an edit is O(edit)
          and equal edit chains applied to equal parents dedupe in the
          engine's content-addressed cache.
        * **Preserved memos** -- a delta that cannot touch the attribute
          matrix (tolerance, constraint, and ranking edits) aliases the
          parent's frozen matrix onto the child, so the chain holds one
          canonical array per distinct matrix (downstream consumers -- the
          engine's cell-evaluator reuse, identity-keyed caches -- see the
          same object, and the duplicate built during construction is
          dropped immediately).

        An empty sequence returns ``self`` unchanged.
        """
        from repro.core.delta import ProblemDelta, compose_fingerprints

        if isinstance(deltas, ProblemDelta):
            deltas = [deltas]
        problem = self
        for delta in deltas:
            if not isinstance(delta, ProblemDelta):
                raise TypeError(
                    f"apply_delta expects ProblemDelta objects, got {delta!r}"
                )
            child = delta.apply(problem)
            if child is problem:  # defensive: a no-op edit keeps the memo as-is
                continue
            if delta.preserves_matrix and child.attributes == problem.attributes:
                child._matrix_memo = problem._matrix_memo
            child._fingerprint = compose_fingerprints(
                problem.fingerprint(), delta.fingerprint()
            )
            problem = child
        return problem

    def with_constraints(self, constraints: ConstraintSet) -> "RankingProblem":
        """A copy of this problem with a different constraint set."""
        return RankingProblem(
            self.relation,
            self.ranking,
            self.attributes,
            constraints,
            self.tolerances,
        )

    def with_tolerances(self, tolerances: ToleranceSettings) -> "RankingProblem":
        """A copy of this problem with different tolerance settings."""
        return RankingProblem(
            self.relation,
            self.ranking,
            self.attributes,
            self.constraints,
            tolerances,
        )

    def restricted_to_positions(self, low: int, high: int) -> "RankingProblem":
        """Fit only the tuples ranked at positions ``low..high``.

        Implements the paper's "university ranked 50th" use case: the ranked
        prefix is re-based so that position ``low`` becomes position 1, and
        tuples outside the window become ``⊥``.
        """
        if low < 1 or high < low:
            raise ValueError("invalid position window")
        positions = self.ranking.positions
        in_window = (positions >= low) & (positions <= high) & (positions != UNRANKED)
        if not np.any(in_window):
            raise ValueError(f"no tuple is ranked in positions [{low}, {high}]")
        window_positions = positions[in_window]
        new_positions = np.full_like(positions, UNRANKED)
        # Re-base as competition ranks within the window so ties stay intact
        # and no "excessive gaps" appear when a tie group straddles `low`.
        for index in np.where(in_window)[0]:
            new_positions[index] = int(np.sum(window_positions < positions[index])) + 1
        return RankingProblem(
            self.relation,
            Ranking(new_positions),
            self.attributes,
            self.constraints,
            self.tolerances,
        )

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation of the full problem instance.

        This is the wire format used by the result cache and the query
        service: every field (relation columns, given positions, constraints,
        tolerances) becomes a plain JSON type.
        """
        return {
            "relation": self.relation.to_dict(),
            "positions": [int(p) for p in self.ranking.positions],
            "attributes": list(self.attributes),
            "constraints": self.constraints.to_dict(),
            "tolerances": self.tolerances.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RankingProblem":
        """Inverse of :meth:`to_dict`."""
        return cls(
            Relation.from_dict(data["relation"]),
            Ranking(np.asarray(data["positions"], dtype=int)),
            attributes=data["attributes"],
            constraints=ConstraintSet.from_dict(data.get("constraints", {})),
            tolerances=ToleranceSettings.from_dict(data["tolerances"]),
        )

    def __repr__(self) -> str:
        return (
            f"RankingProblem(n={self.num_tuples}, m={self.num_attributes}, "
            f"k={self.k}, constraints={len(self.constraints)})"
        )
