"""Result objects returned by every synthesis algorithm in this package.

Exact RankHow, SYM-GD, TREE, and every baseline return a
:class:`SynthesisResult` so that the evaluation harness and the examples can
treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.scoring import LinearScoringFunction

__all__ = ["SynthesisResult"]


@dataclass
class SynthesisResult:
    """Outcome of synthesizing a scoring function for one problem instance.

    Attributes:
        weights: The synthesized weight vector (aligned with ``attributes``).
        attributes: Ranking attribute names.
        error: Position-based error of ``weights`` on the given ranking,
            evaluated with the problem's tie tolerance.
        objective: The solver's internal objective value (may differ slightly
            from ``error`` when the solver's eps1/eps2 thresholds differ from
            the tie tolerance; the gap is what verification checks).
        optimal: Whether optimality was proven.
        method: Name of the algorithm that produced the result.
        solve_time: Wall-clock seconds spent.
        nodes: Branch-and-bound nodes (or an algorithm-specific work counter).
        iterations: Outer iterations (SYM-GD rounds, boosting rounds, samples).
        verified: ``True``/``False`` when exact verification ran, else ``None``.
        diagnostics: Free-form extra information (indicator counts, seeds, ...).
    """

    weights: np.ndarray
    attributes: list[str]
    error: int
    objective: float
    optimal: bool
    method: str
    solve_time: float = 0.0
    nodes: int = 0
    iterations: int = 0
    verified: bool | None = None
    diagnostics: dict = field(default_factory=dict)

    @property
    def scoring_function(self) -> LinearScoringFunction:
        """The synthesized weights wrapped as a scoring function.

        Wrapped without re-normalization so that baselines with negative or
        unnormalized weights round-trip faithfully.
        """
        return LinearScoringFunction(self.weights, self.attributes, normalize=False)

    @property
    def per_tuple_error(self) -> float:
        """Average error per ranked tuple (requires ``k`` in diagnostics)."""
        k = self.diagnostics.get("k")
        if not k:
            return float(self.error)
        return float(self.error) / float(k)

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "optimal" if self.optimal else "feasible"
        return (
            f"[{self.method}] error={self.error} ({status}), "
            f"time={self.solve_time:.2f}s, f(x) = {self.scoring_function.describe()}"
        )

    def __repr__(self) -> str:
        return (
            f"SynthesisResult(method={self.method!r}, error={self.error}, "
            f"optimal={self.optimal}, time={self.solve_time:.3f}s)"
        )
