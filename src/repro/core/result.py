"""Result objects returned by every synthesis algorithm in this package.

Exact RankHow, SYM-GD, TREE, and every baseline return a
:class:`SynthesisResult` so that the evaluation harness and the examples can
treat them uniformly.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.scoring import LinearScoringFunction

__all__ = ["SynthesisResult", "jsonable"]


def jsonable(value):
    """Recursively convert a value into plain JSON types.

    NumPy arrays become lists, NumPy scalars become Python scalars, tuples
    become lists, and dictionary keys are stringified; anything else is passed
    through unchanged.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


@dataclass
class SynthesisResult:
    """Outcome of synthesizing a scoring function for one problem instance.

    Attributes:
        weights: The synthesized weight vector (aligned with ``attributes``).
        attributes: Ranking attribute names.
        error: Position-based error of ``weights`` on the given ranking,
            evaluated with the problem's tie tolerance.
        objective: The solver's internal objective value (may differ slightly
            from ``error`` when the solver's eps1/eps2 thresholds differ from
            the tie tolerance; the gap is what verification checks).
        optimal: Whether optimality was proven.
        method: Name of the algorithm that produced the result.
        solve_time: Wall-clock seconds spent.
        nodes: Branch-and-bound nodes (or an algorithm-specific work counter).
        iterations: Outer iterations (SYM-GD rounds, boosting rounds, samples).
        verified: ``True``/``False`` when exact verification ran, else ``None``.
        diagnostics: Free-form extra information (indicator counts, seeds, ...).
    """

    weights: np.ndarray
    attributes: list[str]
    error: int
    objective: float
    optimal: bool
    method: str
    solve_time: float = 0.0
    nodes: int = 0
    iterations: int = 0
    verified: bool | None = None
    diagnostics: dict = field(default_factory=dict)

    @property
    def scoring_function(self) -> LinearScoringFunction:
        """The synthesized weights wrapped as a scoring function.

        Wrapped without re-normalization so that baselines with negative or
        unnormalized weights round-trip faithfully.
        """
        return LinearScoringFunction(self.weights, self.attributes, normalize=False)

    @property
    def per_tuple_error(self) -> float:
        """Average error per ranked tuple (requires ``k`` in diagnostics)."""
        k = self.diagnostics.get("k")
        if not k:
            return float(self.error)
        return float(self.error) / float(k)

    def copy(self) -> "SynthesisResult":
        """Independent copy: mutating it never affects the original.

        Weights, attributes, and diagnostics are the mutable parts; the
        result cache and batch deduplication rely on this to hand each caller
        a private object.
        """
        return replace(
            self,
            weights=self.weights.copy(),
            attributes=list(self.attributes),
            diagnostics=_copy.deepcopy(self.diagnostics),
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation (inverse: :meth:`from_dict`).

        ``weights`` becomes a list of floats and ``diagnostics`` is sanitized
        recursively (arrays to lists, NumPy scalars to Python scalars), so the
        result can be stored in the on-disk cache or sent over the service's
        wire format.
        """
        return {
            "weights": [float(w) for w in np.asarray(self.weights, dtype=float)],
            "attributes": list(self.attributes),
            "error": int(self.error),
            "objective": float(self.objective),
            "optimal": bool(self.optimal),
            "method": str(self.method),
            "solve_time": float(self.solve_time),
            "nodes": int(self.nodes),
            "iterations": int(self.iterations),
            "verified": None if self.verified is None else bool(self.verified),
            "diagnostics": jsonable(self.diagnostics),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SynthesisResult":
        """Rebuild a result from :meth:`to_dict` output.

        ``weights`` comes back as an ndarray; ``diagnostics`` stays in its
        sanitized JSON form (lists instead of arrays/tuples).
        """
        return cls(
            weights=np.asarray(data["weights"], dtype=float),
            attributes=list(data["attributes"]),
            error=int(data["error"]),
            objective=float(data["objective"]),
            optimal=bool(data["optimal"]),
            method=str(data["method"]),
            solve_time=float(data.get("solve_time", 0.0)),
            nodes=int(data.get("nodes", 0)),
            iterations=int(data.get("iterations", 0)),
            verified=data.get("verified"),
            diagnostics=dict(data.get("diagnostics", {})),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        status = "optimal" if self.optimal else "feasible"
        return (
            f"[{self.method}] error={self.error} ({status}), "
            f"time={self.solve_time:.2f}s, f(x) = {self.scoring_function.describe()}"
        )

    def __repr__(self) -> str:
        return (
            f"SynthesisResult(method={self.method!r}, error={self.error}, "
            f"optimal={self.optimal}, time={self.solve_time:.3f}s)"
        )
