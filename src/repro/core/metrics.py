"""Ranking-quality measures.

The paper's primary objective is the *position-based error* (Definition 3):
the sum over top-k tuples of how far their induced position deviates from the
given position.  The paper also mentions support for Kendall's tau and other
inversion-based measures, including variants that penalize errors near the top
more heavily -- all of which are provided here so that the optimization layer
and the evaluation harness share one implementation.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.ranking import UNRANKED, Ranking
from repro.core.scoring import LinearScoringFunction, induced_ranks

__all__ = [
    "position_error",
    "per_tuple_position_error",
    "position_error_of_function",
    "inversions",
    "kendall_tau",
    "weighted_position_error",
    "evaluate_function",
]


def _ranked_indices_and_positions(ranking: Ranking) -> tuple[np.ndarray, np.ndarray]:
    positions = ranking.positions
    ranked = np.where(positions != UNRANKED)[0]
    return ranked, positions[ranked]


def position_error(ranking: Ranking, induced_positions: np.ndarray) -> int:
    """Total position-based error ``sum_r |rho(r) - pi(r)|`` over top-k tuples.

    Args:
        ranking: The given ranking ``pi``.
        induced_positions: Rank of every tuple of the relation under the
            candidate scoring function (length ``n``).
    """
    induced_positions = np.asarray(induced_positions, dtype=int).ravel()
    if induced_positions.shape[0] != ranking.num_tuples:
        raise ValueError("induced_positions length must equal the relation size")
    ranked, given = _ranked_indices_and_positions(ranking)
    return int(np.sum(np.abs(induced_positions[ranked] - given)))


def per_tuple_position_error(ranking: Ranking, induced_positions: np.ndarray) -> float:
    """Average position error per ranked tuple (the y-axis of Figure 3)."""
    k = ranking.k
    if k == 0:
        return 0.0
    return position_error(ranking, induced_positions) / k


def position_error_of_function(
    ranking: Ranking,
    function: LinearScoringFunction,
    matrix: np.ndarray,
    tie_eps: float = 0.0,
) -> int:
    """Position error of a concrete scoring function on an attribute matrix."""
    return position_error(ranking, function.induced_positions(matrix, tie_eps))


def inversions(ranking: Ranking, scores: np.ndarray, tie_eps: float = 0.0) -> int:
    """Number of inverted pairs among the ranked tuples.

    A pair ``(r, s)`` with ``pi(r) < pi(s)`` counts as inverted when the score
    of ``s`` beats the score of ``r`` by more than ``tie_eps``.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    ranked, given = _ranked_indices_and_positions(ranking)
    count = 0
    for a in range(len(ranked)):
        for b in range(len(ranked)):
            if given[a] < given[b] and scores[ranked[b]] - scores[ranked[a]] > tie_eps:
                count += 1
    return count


def kendall_tau(ranking: Ranking, scores: np.ndarray, tie_eps: float = 0.0) -> float:
    """Kendall's tau between the given ranking and the score order (top-k only).

    Pairs tied in either ranking are ignored in both the numerator and the
    normalizer (tau-a over the strictly ordered pairs).
    """
    scores = np.asarray(scores, dtype=float).ravel()
    ranked, given = _ranked_indices_and_positions(ranking)
    concordant = 0
    discordant = 0
    for a in range(len(ranked)):
        for b in range(a + 1, len(ranked)):
            if given[a] == given[b]:
                continue
            score_diff = scores[ranked[a]] - scores[ranked[b]]
            if abs(score_diff) <= tie_eps:
                continue
            given_says_a_first = given[a] < given[b]
            scores_say_a_first = score_diff > 0
            if given_says_a_first == scores_say_a_first:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total


def weighted_position_error(
    ranking: Ranking,
    induced_positions: np.ndarray,
    weight_of_position: Callable[[int], float] | None = None,
) -> float:
    """Position error with a per-position weight (heavier penalty near the top).

    Args:
        ranking: The given ranking.
        induced_positions: Ranks under the candidate function.
        weight_of_position: Maps a given position ``1..k`` to a weight; the
            default ``1 / position`` penalizes mistakes at the top more, one of
            the "variations" the paper says RankHow supports.
    """
    if weight_of_position is None:
        weight_of_position = lambda position: 1.0 / position  # noqa: E731
    induced_positions = np.asarray(induced_positions, dtype=int).ravel()
    ranked, given = _ranked_indices_and_positions(ranking)
    total = 0.0
    for index, position in zip(ranked, given):
        total += weight_of_position(int(position)) * abs(
            int(induced_positions[index]) - int(position)
        )
    return total


def evaluate_function(
    ranking: Ranking,
    function: LinearScoringFunction,
    matrix: np.ndarray,
    tie_eps: float = 0.0,
) -> dict[str, float]:
    """Convenience bundle of every metric for one candidate function."""
    scores = function.scores(matrix)
    positions = induced_ranks(scores, tie_eps)
    error = position_error(ranking, positions)
    return {
        "position_error": float(error),
        "per_tuple_error": float(error) / max(ranking.k, 1),
        "inversions": float(inversions(ranking, scores, tie_eps)),
        "kendall_tau": kendall_tau(ranking, scores, tie_eps),
        "weighted_position_error": weighted_position_error(ranking, positions),
    }
