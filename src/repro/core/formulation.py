"""The RankHow MILP formulation (Equation 2) and its helpers.

Given a :class:`~repro.core.problem.RankingProblem`, :class:`RankHowFormulation`
builds a :class:`~repro.solvers.milp.MILPModel` with

* one continuous weight variable per ranking attribute (``0 <= w_i <= 1``,
  ``sum w_i = 1``, plus the user's weight constraints),
* one binary indicator ``delta[s, r]`` per (ranked tuple ``r``, other tuple
  ``s``) pair that is not eliminated by the dominance analysis of
  Section V-B,
* one continuous error variable ``e_r >= |rank(r) - pi(r)|`` per ranked tuple,

with the indicator semantics expressed through the paper's ``eps1`` / ``eps2``
thresholds (Equation 3 / Lemma 1) and encoded with *tight* big-M values: over
the weight simplex the score difference ``w . (s - r)`` always lies between the
minimum and maximum attribute difference, which gives pair-specific constants
far smaller than a generic big-M.

Indicator elimination.  The paper removes indicators of dominator/dominatee
pairs.  The formulation applies the natural generalization: if the *minimum*
attribute difference is already ``>= eps1``, every feasible weight vector makes
``s`` beat ``r`` and the indicator is fixed to 1; if the *maximum* difference
is ``<= eps2``, the indicator is fixed to 0.  Strict domination is the special
case where all differences share a sign.

The formulation also supplies the branch-and-bound incumbent heuristic: any
relaxation solution contains a feasible weight vector, and simply *ranking the
tuples by it* yields a feasible integral assignment whose objective is that
vector's true position error.  This is what makes the holistic MILP route so
much faster than the cell-enumeration TREE baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import RankingProblem
from repro.core.ranking import UNRANKED
from repro.solvers.milp import MILPModel

__all__ = ["IndicatorKey", "RankHowFormulation"]


@dataclass(frozen=True)
class IndicatorKey:
    """Identifies the indicator ``delta[s, r]`` (does ``s`` beat ``r``?)."""

    s: int
    r: int


class RankHowFormulation:
    """Builds and interprets the Equation (2) MILP for one problem instance."""

    def __init__(
        self,
        problem: RankingProblem,
        eliminate_dominated: bool = True,
        error_weights: dict[int, float] | None = None,
        cell_bounds: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Build the MILP.

        Args:
            problem: The OPT instance.
            eliminate_dominated: Apply the Section V-B indicator elimination.
            error_weights: Optional per-tuple objective weights keyed by tuple
                index (defaults to 1, i.e. plain position error; pass
                ``1/pi(r)`` style weights for top-heavy objectives).
            cell_bounds: Optional ``(lower, upper)`` box on the weight vector;
                used by SYM-GD to restrict the solve to a cell around a seed
                point, which also makes the dominance analysis fix many more
                indicators.
        """
        self.problem = problem
        self.eliminate_dominated = eliminate_dominated
        self._error_weights = error_weights or {}
        self._cell_lower, self._cell_upper = self._resolve_cell(cell_bounds)
        self.model = MILPModel()
        self.weight_vars: list[int] = []
        self.error_vars: dict[int, int] = {}
        self.indicator_vars: dict[IndicatorKey, int] = {}
        self.fixed_indicators: dict[IndicatorKey, int] = {}
        self._build()

    # -- construction ------------------------------------------------------------

    def _resolve_cell(
        self, cell_bounds: tuple[np.ndarray, np.ndarray] | None
    ) -> tuple[np.ndarray, np.ndarray]:
        m = self.problem.num_attributes
        if cell_bounds is None:
            return np.zeros(m), np.ones(m)
        lower = np.clip(np.asarray(cell_bounds[0], dtype=float).ravel(), 0.0, 1.0)
        upper = np.clip(np.asarray(cell_bounds[1], dtype=float).ravel(), 0.0, 1.0)
        if lower.shape[0] != m or upper.shape[0] != m:
            raise ValueError("cell bounds must have one entry per attribute")
        if np.any(lower > upper):
            raise ValueError("cell lower bounds exceed upper bounds")
        return lower, upper

    def _score_difference_range(self, diff: np.ndarray) -> tuple[float, float]:
        """Range of ``w . diff`` over the (cell-restricted) weight simplex.

        Without a cell the exact range over the simplex is
        ``[min_i diff_i, max_i diff_i]``.  With a box ``[lo, up]`` intersected
        with the simplex the exact range is harder; the box relaxation
        ``sum_i diff_i * (up_i if diff_i > 0 else lo_i)`` is a valid (possibly
        loose) bound, and we intersect it with the simplex bound which is
        always valid because the cell is a subset of the simplex.
        """
        simplex_low = float(np.min(diff))
        simplex_high = float(np.max(diff))
        pos = diff > 0
        neg = diff < 0
        box_low = float(
            np.sum(diff[pos] * self._cell_lower[pos])
            + np.sum(diff[neg] * self._cell_upper[neg])
        )
        box_high = float(
            np.sum(diff[pos] * self._cell_upper[pos])
            + np.sum(diff[neg] * self._cell_lower[neg])
        )
        return max(simplex_low, box_low), min(simplex_high, box_high)

    def _build(self) -> None:
        problem = self.problem
        matrix = problem.matrix
        tolerances = problem.tolerances
        positions = problem.ranking.positions
        ranked = problem.top_k_indices()
        n = problem.num_tuples
        m = problem.num_attributes
        # Rank-dominance pruning (repro.core.prune) pins the error bound to
        # the *original* tuple count so the pruned model is bitwise-identical
        # to the full model after the dominance elimination below.
        error_bound = float(getattr(problem, "_error_bound_override", n))

        # Weight variables and the simplex constraint.
        for j in range(m):
            self.weight_vars.append(
                self.model.add_continuous(
                    lower=float(self._cell_lower[j]),
                    upper=float(self._cell_upper[j]),
                    name=f"w[{problem.attributes[j]}]",
                )
            )
        self.model.add_constraint(
            {index: 1.0 for index in self.weight_vars}, "==", 1.0
        )

        # User weight constraints.
        for row, sense, rhs in problem.constraints.weight_rows(problem.attributes):
            self.model.add_constraint(
                {self.weight_vars[j]: float(row[j]) for j in range(m) if row[j] != 0.0},
                sense,
                rhs,
            )

        # Precedence constraints become direct weight constraints.
        for precedence in problem.constraints.precedence_constraints:
            diff = matrix[precedence.above] - matrix[precedence.below]
            self.model.add_constraint(
                {self.weight_vars[j]: float(diff[j]) for j in range(m)},
                ">=",
                tolerances.eps1,
            )

        # Indicators, error variables and error constraints per ranked tuple.
        for r in ranked:
            fixed_ones = 0
            variable_indices: list[int] = []
            for s in range(n):
                if s == r:
                    continue
                key = IndicatorKey(int(s), int(r))
                diff = matrix[s] - matrix[r]
                low, high = self._score_difference_range(diff)
                if self.eliminate_dominated and low >= tolerances.eps1:
                    self.fixed_indicators[key] = 1
                    fixed_ones += 1
                    continue
                if self.eliminate_dominated and high <= tolerances.eps2:
                    self.fixed_indicators[key] = 0
                    continue
                delta = self.model.add_binary(name=f"delta[{s},{r}]")
                self.indicator_vars[key] = delta
                variable_indices.append(delta)
                row = {self.weight_vars[j]: float(diff[j]) for j in range(m)}
                self.model.add_indicator(
                    delta,
                    1,
                    row,
                    ">=",
                    tolerances.eps1,
                    big_m=max(tolerances.eps1 - low, 0.0),
                )
                self.model.add_indicator(
                    delta,
                    0,
                    row,
                    "<=",
                    tolerances.eps2,
                    big_m=max(high - tolerances.eps2, 0.0),
                )

            given_position = int(positions[r])
            weight = float(self._error_weights.get(int(r), 1.0))
            error_var = self.model.add_continuous(
                lower=0.0, upper=error_bound, objective=weight, name=f"e[{r}]"
            )
            self.error_vars[int(r)] = error_var
            base = 1 + fixed_ones - given_position
            # e >= rank - pi(r)  <=>  e - sum(delta) >= base
            row_up = {error_var: 1.0}
            for delta in variable_indices:
                row_up[delta] = -1.0
            self.model.add_constraint(row_up, ">=", float(base))
            # e >= pi(r) - rank  <=>  e + sum(delta) >= -base
            row_down = {error_var: 1.0}
            for delta in variable_indices:
                row_down[delta] = 1.0
            self.model.add_constraint(row_down, ">=", float(-base))

            # Position-range constraints for this tuple (if any).
            for constraint in problem.constraints.position_constraints:
                if constraint.tuple_index != r:
                    continue
                # min_pos <= 1 + fixed_ones + sum(delta) <= max_pos
                min_rhs = float(constraint.min_position - 1 - fixed_ones)
                max_rhs = float(constraint.max_position - 1 - fixed_ones)
                sum_row = {delta: 1.0 for delta in variable_indices}
                if sum_row:
                    self.model.add_constraint(sum_row, ">=", min_rhs)
                    self.model.add_constraint(sum_row, "<=", max_rhs)
                else:
                    if not (min_rhs <= 0.0 <= max_rhs):
                        # Infeasible by construction: encode with an impossible
                        # constraint so the solver reports infeasibility.
                        self.model.add_constraint(
                            {self.weight_vars[0]: 0.0}, ">=", 1.0
                        )

    # -- interpretation ------------------------------------------------------------

    @property
    def num_indicator_variables(self) -> int:
        return len(self.indicator_vars)

    @property
    def num_eliminated_indicators(self) -> int:
        return len(self.fixed_indicators)

    def weights_from(self, x: np.ndarray) -> np.ndarray:
        """Extract the weight vector from a full variable assignment."""
        weights = np.asarray([x[idx] for idx in self.weight_vars], dtype=float)
        weights[np.abs(weights) < 1e-12] = 0.0
        weights[weights < 0.0] = 0.0
        return weights

    def objective_error(self, x: np.ndarray) -> float:
        """Objective value (sum of error variables) of an assignment."""
        return float(sum(x[idx] for idx in self.error_vars.values()))

    def indicator_assignment_for(
        self, weights: np.ndarray, strict: bool = True
    ) -> dict[IndicatorKey, int] | None:
        """Indicator values implied by a weight vector.

        A pair whose score difference falls strictly between ``eps2`` and
        ``eps1`` cannot be assigned either value exactly (that is the "safety
        gap" of Equation 3).  With ``strict=True`` such a weight vector has no
        feasible completion and ``None`` is returned.  With ``strict=False``
        the gap pair is resolved to the nearer side -- the same
        within-tolerance acceptance a floating-point MILP solver applies --
        and the caller is expected to re-check feasibility (and, ultimately,
        run exact verification).
        """
        matrix = self.problem.matrix
        tolerances = self.problem.tolerances
        midpoint = 0.5 * (tolerances.eps1 + tolerances.eps2)
        assignment: dict[IndicatorKey, int] = {}
        for key in self.indicator_vars:
            difference = float(weights @ (matrix[key.s] - matrix[key.r]))
            if difference >= tolerances.eps1:
                assignment[key] = 1
            elif difference <= tolerances.eps2:
                assignment[key] = 0
            elif strict:
                return None
            else:
                assignment[key] = 1 if difference > midpoint else 0
        return assignment

    def assemble_solution(
        self, weights: np.ndarray, assignment: dict[IndicatorKey, int]
    ) -> np.ndarray:
        """Build a full variable vector from weights plus indicator values."""
        x = np.zeros(self.model.num_vars)
        for j, idx in enumerate(self.weight_vars):
            x[idx] = weights[j]
        counts: dict[int, int] = {r: 0 for r in self.error_vars}
        for key, value in self.fixed_indicators.items():
            if value == 1:
                counts[key.r] = counts.get(key.r, 0) + 1
        for key, idx in self.indicator_vars.items():
            value = assignment[key]
            x[idx] = float(value)
            if value == 1:
                counts[key.r] = counts.get(key.r, 0) + 1
        positions = self.problem.ranking.positions
        for r, error_var in self.error_vars.items():
            rank = 1 + counts.get(r, 0)
            x[error_var] = float(abs(rank - int(positions[r])))
        return x

    def incumbent_from_weights(
        self, weights: np.ndarray, strict: bool = False
    ) -> np.ndarray | None:
        """Full assignment for a weight vector, or ``None``.

        Non-strict by default: gap pairs are resolved within tolerance and the
        branch-and-bound re-checks feasibility before accepting the incumbent.
        """
        assignment = self.indicator_assignment_for(weights, strict=strict)
        if assignment is None:
            return None
        return self.assemble_solution(weights, assignment)

    def incumbent_callback(self, x_relaxation: np.ndarray, model: MILPModel) -> np.ndarray | None:
        """Branch-and-bound hook: round a relaxation solution to a feasible one."""
        del model  # the formulation already holds everything it needs
        weights = self.weights_from(x_relaxation)
        total = float(weights.sum())
        if total <= 0:
            return None
        # The relaxation's weights satisfy sum w = 1 up to numerical noise;
        # re-normalizing keeps the simplex constraint exactly satisfied.  When
        # user weight constraints are active the unnormalized vector is used as
        # is (re-normalization might violate an equality constraint); feasibility
        # is re-checked by the solver either way.
        if not self.problem.constraints.weight_constraints:
            weights = weights / total
        return self.incumbent_from_weights(weights)

    def error_of_top_k(self, weights: np.ndarray) -> int:
        """True position error of a weight vector (uses the tie tolerance)."""
        return self.problem.error_of(weights)
