"""Rank-dominance tuple pruning for the million-row data plane.

OPT's MILP cost scales with ``k * (n - 1)`` indicator pairs, but on large
relations the vast majority of tuples are nowhere near the top-``k`` band:
they are componentwise so far below every ranked tuple that no weight vector
on the simplex can ever score them into contention.  This module removes
those tuples *before* the formulation is built.

Soundness.  A tuple ``s`` is pruned only when it is unranked, referenced by
no position/precedence constraint, and satisfies

    s_j <= min_{ranked r} r_j + thr_eff      for every attribute j,

where ``thr = min(eps2, tie_eps)`` and ``thr_eff = thr - margin`` with a
float-safety margin of ``64 * m * spacing(scale)`` (``scale`` the matrix's
absolute maximum, spacing evaluated in the matrix dtype).  Over the weight
simplex (and therefore over any SYM-GD cell, which is a subset) the score
difference ``w . (s - r)`` is bounded by ``max_j (s_j - r_j)``, so for every
ranked ``r``:

* ``w . (s - r) <= thr_eff <= eps2``: the Section V-B dominance analysis
  would fix the indicator ``delta[s, r]`` to 0, so with the default
  ``eliminate_dominated=True`` the pruned MILP is *identical* (same
  variables in the same order, same constraints, same coefficients) to the
  full MILP once the error-variable bound is pinned via
  ``_error_bound_override`` -- solver trajectories, not just optima, match.
* ``w . (s - r) <= thr_eff <= tie_eps``: ``s`` never beats any ranked tuple
  under the tie-tolerant ranking, so every ranked tuple's induced rank --
  and therefore the position error of *any* weight vector -- is unchanged
  by dropping ``s``.

The margin absorbs the worst-case accumulated rounding of the ``m``-term
dot products on both sides of the comparison; it errs toward *keeping*
borderline tuples, which only costs performance, never correctness.

Exactness caveat: seed strategies that read unranked tuples
(``ordinal_regression``, ``linear_regression``, and the default ``symgd``
warm start built on them) see different data after pruning, so their seeds
-- and hence which of several equally-optimal weight vectors a solver
reports -- can differ.  The optimum *error* is always preserved; bitwise
weight parity additionally holds under prune-invariant seeding
(``none``/``uniform``/``grid`` or explicit seeds/warm starts), which the
pruning-safety tests assert across every scenario family.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import chunking
from repro.core.problem import RankingProblem
from repro.core.ranking import UNRANKED

__all__ = ["PruneInfo", "prune_problem", "prune_threshold"]

#: Per-attribute ulp multiplier of the float-safety margin.  64 covers the
#: worst-case error of an m-term dot product plus the subtraction, with a
#: generous factor for BLAS reassociation, for every realistic m.
_MARGIN_ULPS = 64


@dataclass(frozen=True)
class PruneInfo:
    """Outcome of one pruning pass over a problem instance.

    Attributes:
        problem: The pruned problem (``is original_problem`` when nothing
            was pruned).
        kept: Original indices of the surviving tuples.
        pruned: Original indices of the dropped tuples (sorted).
        original_n: Tuple count before pruning.
        threshold: The effective componentwise threshold ``thr_eff``.
    """

    problem: RankingProblem
    kept: np.ndarray
    pruned: np.ndarray
    original_n: int
    threshold: float = field(default=0.0)

    @property
    def num_pruned(self) -> int:
        return int(self.pruned.shape[0])

    @property
    def ratio(self) -> float:
        """Fraction of tuples removed (0.0 when nothing was prunable)."""
        if self.original_n == 0:
            return 0.0
        return self.num_pruned / self.original_n


def prune_threshold(problem: RankingProblem) -> float:
    """The effective componentwise threshold ``thr_eff`` for a problem.

    ``min(eps2, tie_eps)`` minus the float-safety margin; see the module
    docstring for the derivation.
    """
    matrix = problem.matrix
    thr = min(problem.tolerances.eps2, problem.tolerances.tie_eps)
    scale = _matrix_scale(matrix)
    margin = float(
        _MARGIN_ULPS
        * problem.num_attributes
        * np.spacing(np.asarray(scale, dtype=matrix.dtype))
    )
    return thr - margin


def _matrix_scale(matrix: np.ndarray) -> float:
    """Absolute maximum of the matrix, streamed in budgeted row blocks."""
    n = matrix.shape[0]
    if n == 0:
        return 1.0
    row_bytes = max(matrix.shape[1] * matrix.itemsize, 1)
    rows = chunking.chunk_rows_for(row_bytes, n, None)
    scale = 0.0
    for start in range(0, n, rows):
        block = matrix[start : start + rows]
        scale = max(scale, float(np.max(np.abs(block))))
    return max(scale, 1.0)


def prune_problem(problem: RankingProblem) -> PruneInfo:
    """Drop tuples that provably cannot affect any solver's reported error.

    Memoized on the problem instance (immutable by convention, like the
    fingerprint memo), so the engine, RankHow, and SYM-GD can all ask for
    the prune without repeating the scan; deltas build *new* instances, so
    a stale prune can never be served for an edited problem.
    """
    memo = getattr(problem, "_prune_memo", None)
    if memo is not None:
        return memo
    info = _compute_prune(problem)
    problem._prune_memo = info
    if info.problem is not problem:
        # Re-pruning the pruned problem is a no-op by construction: every
        # surviving unranked tuple already failed the criterion.  Record
        # that so nested solvers (SYM-GD's inner RankHow) skip the scan.
        info.problem._prune_memo = PruneInfo(
            problem=info.problem,
            kept=np.arange(info.problem.num_tuples),
            pruned=np.zeros(0, dtype=int),
            original_n=info.problem.num_tuples,
            threshold=info.threshold,
        )
    return info


def _compute_prune(problem: RankingProblem) -> PruneInfo:
    n = problem.num_tuples
    positions = problem.ranking.positions
    ranked = np.where(positions != UNRANKED)[0]
    no_op = PruneInfo(
        problem=problem,
        kept=np.arange(n),
        pruned=np.zeros(0, dtype=int),
        original_n=n,
        threshold=0.0,
    )
    if ranked.size == 0 or ranked.size >= n:
        return no_op

    matrix = problem.matrix
    thr_eff = prune_threshold(problem)
    # Componentwise ceiling: a tuple at or below every ranked tuple in every
    # attribute (within thr_eff) can never out-score any of them.
    ceiling = matrix[ranked].min(axis=0) + np.asarray(thr_eff, dtype=matrix.dtype)

    protected = np.zeros(n, dtype=bool)
    protected[ranked] = True
    constraints = problem.constraints
    for constraint in constraints.position_constraints:
        protected[constraint.tuple_index] = True
    for constraint in constraints.precedence_constraints:
        protected[constraint.above] = True
        protected[constraint.below] = True

    row_bytes = max(matrix.shape[1] * matrix.itemsize + 2, 1)
    rows = chunking.chunk_rows_for(row_bytes, n, None)
    if rows < n:
        chunking.record_chunked_eval(rows * row_bytes)
    prunable = np.zeros(n, dtype=bool)
    for start in range(0, n, rows):
        block = matrix[start : start + rows]
        prunable[start : start + rows] = np.all(block <= ceiling, axis=1)
    prunable &= ~protected
    if not np.any(prunable):
        return no_op

    pruned_indices = np.where(prunable)[0]
    kept = np.where(~prunable)[0]
    pruned_problem = _build_pruned(problem, kept)
    # Pin the MILP error-variable bound to the original tuple count so the
    # pruned formulation is bitwise-identical to the full one under the
    # default dominance elimination (see RankHowFormulation).
    pruned_problem._error_bound_override = float(n)
    return PruneInfo(
        problem=pruned_problem,
        kept=kept,
        pruned=pruned_indices,
        original_n=n,
        threshold=thr_eff,
    )


def _build_pruned(problem: RankingProblem, kept: np.ndarray) -> RankingProblem:
    """The surviving-tuple subproblem, with constraints reindexed.

    Mirrors :class:`~repro.core.delta.DropTuplesDelta` (vectorized -- the
    delta's Python-level keep loop is too slow at a million rows, and its
    payload fingerprint over the dropped-index list is pure overhead here:
    pruned problems are internal solver artifacts, never cache keys).
    Constraint-referenced tuples are excluded from pruning, so only the
    index *shift* applies; no constraint is ever dropped.
    """
    from repro.core.constraints import (
        ConstraintSet,
        PositionRangeConstraint,
        PrecedenceConstraint,
    )
    from repro.core.ranking import Ranking

    shift = np.zeros(problem.num_tuples, dtype=int)
    shift[kept] = np.arange(kept.shape[0])
    constraints = problem.constraints
    new_constraints = ConstraintSet(
        list(constraints.weight_constraints),
        [
            PositionRangeConstraint(
                int(shift[c.tuple_index]), c.min_position, c.max_position
            )
            for c in constraints.position_constraints
        ],
        [
            PrecedenceConstraint(int(shift[c.above]), int(shift[c.below]))
            for c in constraints.precedence_constraints
        ],
    )
    return RankingProblem(
        problem.relation.take(kept),
        Ranking(problem.ranking.positions[kept]),
        attributes=problem.attributes,
        constraints=new_constraints,
        tolerances=problem.tolerances,
    )
