"""Numerical-imprecision handling (Section V-A).

Floating-point MILP solvers accept constraints that are only "close enough" to
satisfied; in a ranking context even a tiny violation can flip the order of
two tuples.  The paper's remedy has three parts, all implemented here:

* **Threshold construction** (Lemmas 2 and 3): given the tie tolerance ``eps``
  and the solver's precision tolerance ``tau``, set ``eps2 = eps - tau`` and
  ``eps1 = eps + tau+`` so an indicator can never be considered both 0 and 1
  and the solver never admits a false positive.
* **Exact verification**: re-evaluate a candidate weight vector with exact
  rational arithmetic (:class:`fractions.Fraction`, the Python analogue of the
  paper's BigDecimal check) and compare the exact position error with the
  error the solver believes it achieved.
* **Tau search**: a binary-search heuristic that finds a sufficiently large
  ``tau`` by repeatedly solving and verifying.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.core.metrics import position_error
from repro.core.problem import RankingProblem, ToleranceSettings

__all__ = [
    "VerificationReport",
    "exact_scores",
    "exact_induced_positions",
    "exact_position_error",
    "verify_weights",
    "choose_epsilons",
    "find_tau",
]


@dataclass
class VerificationReport:
    """Outcome of exact-arithmetic verification of a candidate solution.

    Attributes:
        exact_error: Position error computed with exact rational arithmetic.
        claimed_error: Error the solver reported (``None`` if not supplied).
        float_error: Error recomputed with ordinary floating point.
        consistent: ``True`` when the claimed error matches the exact error.
    """

    exact_error: int
    claimed_error: int | None
    float_error: int
    consistent: bool


def exact_scores(matrix: np.ndarray, weights: np.ndarray) -> list[Fraction]:
    """Exact scores ``w . x`` for every row, as rationals.

    ``Fraction(float)`` is exact (every binary float is a rational), so this
    reproduces precisely the value an infinitely precise evaluator would
    compute from the stored floating-point inputs.
    """
    matrix = np.asarray(matrix, dtype=float)
    weights = np.asarray(weights, dtype=float).ravel()
    fraction_weights = [Fraction(w) for w in weights]
    scores: list[Fraction] = []
    for row in matrix:
        total = Fraction(0)
        for value, weight in zip(row, fraction_weights):
            total += Fraction(float(value)) * weight
        scores.append(total)
    return scores


def exact_induced_positions(
    scores: list[Fraction], tie_eps: float = 0.0
) -> np.ndarray:
    """Competition ranks from exact scores with an exact tie tolerance."""
    eps = Fraction(float(tie_eps))
    n = len(scores)
    positions = np.zeros(n, dtype=int)
    for r in range(n):
        beats = sum(1 for s in range(n) if scores[s] - scores[r] > eps)
        positions[r] = beats + 1
    return positions


def exact_position_error(
    problem: RankingProblem, weights: np.ndarray
) -> int:
    """Exact position error of a weight vector on a problem instance."""
    scores = exact_scores(problem.matrix, weights)
    positions = exact_induced_positions(scores, problem.tolerances.tie_eps)
    return position_error(problem.ranking, positions)


def verify_weights(
    problem: RankingProblem,
    weights: np.ndarray,
    claimed_error: int | None = None,
) -> VerificationReport:
    """Verify a solver-produced weight vector with exact arithmetic.

    A solution "fails verification" (``consistent == False``) exactly when the
    solver's claimed error differs from the error the weight vector actually
    achieves -- the false positives that Table III demonstrates for too-small
    ``eps1`` values.
    """
    exact_error = exact_position_error(problem, weights)
    float_error = problem.error_of(weights)
    consistent = claimed_error is None or int(claimed_error) == exact_error
    return VerificationReport(
        exact_error=exact_error,
        claimed_error=None if claimed_error is None else int(claimed_error),
        float_error=float_error,
        consistent=consistent,
    )


def choose_epsilons(tie_eps: float, tau: float) -> ToleranceSettings:
    """Apply the paper's recipe ``eps2 = eps - tau``, ``eps1 = eps + tau+``."""
    return ToleranceSettings.from_precision(tie_eps=tie_eps, tau=tau)


def find_tau(
    problem: RankingProblem,
    solve_and_claim: Callable[[ToleranceSettings], tuple[np.ndarray, int]],
    tau_low: float = 1e-12,
    tau_high: float = 1e-2,
    max_steps: int = 20,
) -> float:
    """Binary-search the precision tolerance ``tau`` (Section V-A heuristic).

    Args:
        problem: The OPT instance.
        solve_and_claim: Callback that solves the problem under the supplied
            tolerance settings and returns ``(weights, claimed_error)``.
        tau_low: Smallest tau to consider.
        tau_high: Largest tau to consider.
        max_steps: Binary-search iterations.

    Returns:
        The smallest tested ``tau`` whose solution passed exact verification.
        Falls back to ``tau_high`` when even the largest value fails.
    """
    if tau_low <= 0 or tau_high <= tau_low:
        raise ValueError("need 0 < tau_low < tau_high")

    def passes(tau: float) -> bool:
        settings = choose_epsilons(problem.tolerances.tie_eps, tau)
        weights, claimed = solve_and_claim(settings)
        return verify_weights(
            problem.with_tolerances(settings), weights, claimed
        ).consistent

    low, high = tau_low, tau_high
    best = tau_high
    if passes(high):
        best = high
    else:
        return tau_high
    for _ in range(max_steps):
        mid = float(np.sqrt(low * high))  # geometric midpoint for scale search
        if passes(mid):
            best = mid
            high = mid
        else:
            low = mid
        if high / low < 1.5:
            break
    return best


def has_numerical_issue(
    problem: RankingProblem,
    weights: np.ndarray,
    claimed_error: int,
) -> bool:
    """True when a claimed solution fails exact verification (a false positive)."""
    return not verify_weights(problem, weights, claimed_error).consistent


def ranked_score_gaps(problem: RankingProblem, weights: np.ndarray) -> np.ndarray:
    """Exact score gaps between consecutively ranked tuples (diagnostics).

    Useful for deciding whether a dataset needs a larger tie tolerance: gaps
    smaller than the solver tolerance are where imprecision flips orders.
    """
    scores = exact_scores(problem.matrix, weights)
    ranked = problem.ranking.ranked_indices()
    gaps = []
    for first, second in zip(ranked[:-1], ranked[1:]):
        gaps.append(float(scores[first] - scores[second]))
    return np.asarray(gaps, dtype=float)
