"""Linear scoring functions and the rankings they induce (Definition 2).

A linear scoring function is a weight vector ``W = (w_1, ..., w_m)`` with
``w_i >= 0`` and ``sum w_i = 1`` over ranking attributes ``A_1..A_m``.  The
*induced ranking* ``rho_W`` assigns tuple ``r`` the rank ``1 + |{s :
f_W(s) - f_W(r) > eps}|`` where ``eps`` is the tie tolerance: scores within
``eps`` of each other are considered tied, which makes the ranking robust to
floating-point imprecision (Section II).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core import chunking

__all__ = [
    "LinearScoringFunction",
    "induced_ranks",
    "induced_ranks_many",
    "normalize_weights",
]


def normalize_weights(weights: Sequence[float] | np.ndarray) -> np.ndarray:
    """Clip tiny negatives to zero and rescale so the weights sum to one."""
    w = np.asarray(weights, dtype=float).ravel().copy()
    w[w < 0] = 0.0
    total = float(w.sum())
    if total <= 0:
        raise ValueError("weights must contain at least one positive entry")
    return w / total


def induced_ranks(
    scores: np.ndarray,
    tie_eps: float = 0.0,
    sorted_scores: np.ndarray | None = None,
) -> np.ndarray:
    """Rank of every tuple under Definition 2 (competition ranking with eps).

    ``rank(r) = 1 + |{s : score(s) - score(r) > tie_eps}|``.

    Args:
        scores: Score of every tuple.
        tie_eps: Tie tolerance.
        sorted_scores: Optional precomputed ``np.sort(scores)``.  Callers
            that rank the same score vector repeatedly (different ``tie_eps``
            values, or the SYM-GD inner loop's repeated evaluations of one
            candidate) can sort once and skip the ``O(n log n)`` step here.
    """
    scores = np.asarray(scores, dtype=float).ravel()
    n = scores.shape[0]
    if tie_eps < 0:
        raise ValueError("tie_eps must be non-negative")
    if n == 0:
        return np.zeros(0, dtype=int)
    if sorted_scores is None:
        sorted_scores = np.sort(scores)
    beats = n - np.searchsorted(sorted_scores, scores + tie_eps, side="right")
    return beats.astype(int) + 1


def induced_ranks_many(
    scores: np.ndarray,
    tie_eps: float = 0.0,
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Row-wise :func:`induced_ranks` for a ``(num_candidates, n)`` score matrix.

    Each row is ranked exactly as :func:`induced_ranks` would rank it (same
    sort, same ``searchsorted`` call), so the batched result is bit-identical
    to the per-row reference; only the Python-level call overhead and the
    row sorts are amortized.

    The sort/shift transients are materialized in row blocks: ``chunk_rows``
    rows at a time when given, otherwise a block size chosen from the
    data-plane memory budget (:mod:`repro.core.chunking`).  Rows are
    independent, so the blocked result is bitwise-identical to the
    single-shot one for any block size.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 2:
        raise ValueError("induced_ranks_many expects a 2-D score matrix")
    if tie_eps < 0:
        raise ValueError("tie_eps must be non-negative")
    num_candidates, n = scores.shape
    if n == 0:
        return np.zeros((num_candidates, 0), dtype=int)
    row_bytes = n * scores.itemsize * 3  # sorted + shifted + one output block
    rows = chunking.chunk_rows_for(row_bytes, num_candidates, chunk_rows)
    if rows < num_candidates:
        chunking.record_chunked_eval(rows * row_bytes)
    ranks = np.empty((num_candidates, n), dtype=int)
    for start in range(0, num_candidates, rows):
        block = scores[start : start + rows]
        sorted_rows = np.sort(block, axis=1)
        shifted = block + tie_eps
        for i in range(block.shape[0]):
            ranks[start + i] = n - np.searchsorted(
                sorted_rows[i], shifted[i], side="right"
            )
    return ranks + 1


class LinearScoringFunction:
    """``f_W(x) = sum_i w_i * x_i`` over named ranking attributes."""

    def __init__(
        self,
        weights: Sequence[float] | np.ndarray,
        attributes: Sequence[str],
        normalize: bool = True,
    ) -> None:
        """Create a scoring function.

        Args:
            weights: Non-negative weights, one per attribute.
            attributes: Ranking attribute names, aligned with ``weights``.
            normalize: Rescale the weights to sum to one (the paper's
                convention); set to ``False`` to keep raw weights.
        """
        weights = np.asarray(weights, dtype=float).ravel()
        if len(attributes) != weights.shape[0]:
            raise ValueError("weights and attributes must have the same length")
        if normalize:
            if np.any(weights < -1e-9):
                raise ValueError(
                    "normalized scoring functions require non-negative weights; "
                    "pass normalize=False for arbitrary linear functions"
                )
            self._weights = normalize_weights(weights)
        else:
            self._weights = weights.copy()
        self._attributes = list(attributes)

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @property
    def attributes(self) -> list[str]:
        return list(self._attributes)

    @property
    def num_attributes(self) -> int:
        return len(self._attributes)

    def weight_of(self, attribute: str) -> float:
        """Weight assigned to a named attribute."""
        try:
            index = self._attributes.index(attribute)
        except ValueError as exc:
            raise KeyError(f"unknown attribute {attribute!r}") from exc
        return float(self._weights[index])

    def scores(self, matrix: np.ndarray) -> np.ndarray:
        """Scores of every row of an ``(n, m)`` attribute matrix."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != self.num_attributes:
            raise ValueError(
                f"matrix must have shape (n, {self.num_attributes}), got {matrix.shape}"
            )
        return matrix @ self._weights

    def score_relation(self, relation) -> np.ndarray:
        """Scores of every tuple of a relation (by attribute name)."""
        return self.scores(relation.matrix(self._attributes))

    def induced_positions(
        self, matrix: np.ndarray, tie_eps: float = 0.0
    ) -> np.ndarray:
        """Rank of every row under this function (Definition 2)."""
        return induced_ranks(self.scores(matrix), tie_eps)

    def top_k_indices(
        self, matrix: np.ndarray, k: int, tie_eps: float = 0.0
    ) -> np.ndarray:
        """Indices of the top-``k`` rows, ties broken by row index."""
        ranks = self.induced_positions(matrix, tie_eps)
        order = np.lexsort((np.arange(len(ranks)), ranks))
        return order[:k]

    def describe(self, precision: int = 3, threshold: float = 5e-4) -> str:
        """Human-readable form such as ``0.02*REB + 0.14*AST + 0.84*BLK``."""
        terms = [
            f"{weight:.{precision}f}*{name}"
            for weight, name in zip(self._weights, self._attributes)
            if abs(weight) > threshold
        ]
        return " + ".join(terms) if terms else "0"

    def __repr__(self) -> str:
        return f"LinearScoringFunction({self.describe()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearScoringFunction):
            return NotImplemented
        return (
            self._attributes == other._attributes
            and np.allclose(self._weights, other._weights)
        )
