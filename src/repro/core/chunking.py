"""Bounded-memory chunking policy for the streaming data plane.

One module-level memory budget governs every chunked evaluation path
(:meth:`RankingProblem.errors_of_many
<repro.core.problem.RankingProblem.errors_of_many>`,
:func:`~repro.core.scoring.induced_ranks_many`, the streaming
:class:`~repro.core.cells.CellBoundEvaluator`): callers describe the
per-row transient footprint of the block they want to materialize and get
back a row count that keeps that block under budget.  An explicit
``chunk_rows`` always wins; the budget only shapes the *auto* choice, so
small problems keep taking the single-shot reference path bit-for-bit.

The module also owns the data-plane telemetry the engine exports:
``chunked_evals_total`` (evaluations that actually took a chunked path)
and ``peak_chunk_bytes`` (high-water transient block size), read by
``SolveEngine.stats()`` and the ``repro_engine_*`` metric collectors.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = [
    "DEFAULT_MEMORY_BUDGET_MB",
    "memory_budget_bytes",
    "set_memory_budget_mb",
    "memory_budget",
    "chunk_rows_for",
    "record_chunked_eval",
    "counters",
    "reset_counters",
]

DEFAULT_MEMORY_BUDGET_MB = 64.0

_lock = threading.Lock()
_budget_bytes = int(DEFAULT_MEMORY_BUDGET_MB * 1024 * 1024)
_chunked_evals_total = 0
_peak_chunk_bytes = 0


def memory_budget_bytes() -> int:
    """The current transient-block memory budget, in bytes."""
    return _budget_bytes


def set_memory_budget_mb(budget_mb: float | None) -> None:
    """Set the data-plane memory budget (``None`` restores the default).

    The budget bounds the *transient* blocks a chunked evaluation
    materializes at once (score/rank blocks, pair-difference blocks), not
    the resident size of the relation itself.
    """
    global _budget_bytes
    if budget_mb is None:
        budget_mb = DEFAULT_MEMORY_BUDGET_MB
    if budget_mb <= 0:
        raise ValueError("memory budget must be positive")
    with _lock:
        _budget_bytes = int(budget_mb * 1024 * 1024)


@contextmanager
def memory_budget(budget_mb: float | None):
    """Temporarily override the memory budget (tests, bench legs)."""
    previous = _budget_bytes / (1024 * 1024)
    set_memory_budget_mb(budget_mb)
    try:
        yield
    finally:
        set_memory_budget_mb(previous)


def chunk_rows_for(
    row_bytes: int, total_rows: int, chunk_rows: int | None = None
) -> int:
    """Rows per block for a transient that costs ``row_bytes`` per row.

    An explicit ``chunk_rows`` wins verbatim (clamped to at least 1);
    otherwise the block is sized so ``rows * row_bytes`` stays under the
    module budget.  Returns at least 1 row -- a single row over budget is
    processed anyway (it cannot be split further).
    """
    if chunk_rows is not None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be at least 1")
        return min(int(chunk_rows), max(int(total_rows), 1))
    if total_rows <= 1 or row_bytes <= 0:
        return max(int(total_rows), 1)
    rows = _budget_bytes // int(row_bytes)
    return int(min(max(rows, 1), total_rows))


def record_chunked_eval(chunk_bytes: int) -> None:
    """Count one evaluation that took a chunked path."""
    global _chunked_evals_total, _peak_chunk_bytes
    with _lock:
        _chunked_evals_total += 1
        if chunk_bytes > _peak_chunk_bytes:
            _peak_chunk_bytes = int(chunk_bytes)


def counters() -> dict:
    """Data-plane telemetry snapshot (engine stats / metric collectors)."""
    with _lock:
        return {
            "chunked_evals_total": _chunked_evals_total,
            "peak_chunk_bytes": _peak_chunk_bytes,
            "memory_budget_bytes": _budget_bytes,
        }


def reset_counters() -> None:
    """Zero the counters (the budget itself is left alone)."""
    global _chunked_evals_total, _peak_chunk_bytes
    with _lock:
        _chunked_evals_total = 0
        _peak_chunk_bytes = 0
