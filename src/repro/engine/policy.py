"""Pluggable cache policies: what the result cache keeps, and what it warms.

The default :class:`~repro.engine.cache.ResultCache` is a plain recency LRU:
correct, but blind to two signals the serving stack already records -- how
*often* a fingerprint comes back (the workload profile's repeat structure)
and how *expensive* it is to recompute (the solve wall time threaded through
``put``).  This module supplies the policy layer that acts on both:

* :class:`CostAwarePolicy` -- scores every resident entry as
  ``decayed_frequency x recompute_cost`` (an EWMA hit-probability estimate
  times the recorded solve cost) and evicts the **lowest-scoring** entry
  instead of the oldest.  A brand-new entry starts with one access worth of
  frequency, so a one-off scan key scores below a repeatedly-hit expensive
  key: inserting it and immediately evicting the global minimum *is* the
  admission filter -- scan traffic washes through without displacing the
  hot set.
* :func:`predict_next_deltas` -- the prewarmer's model: given the edit-kind
  frequencies observed in the live workload (the profile recorder's
  ``delta_kinds`` stream), emit the concrete :class:`ProblemDelta` chains an
  analyst is most likely to apply next -- the tolerance-tighten and
  drop-tuple edits of ``scenarios.mutation_delta()``, built with identical
  parameters so a prewarmed solve lands as an *exact* fingerprint hit.
* Hot-set serialization -- :meth:`CachePolicy.export_entries` /
  :meth:`CachePolicy.seed` round-trip the per-key score state through the
  JSON hot-set file (:meth:`ResultCache.save_hot_set`), so a restarted
  server rebuilds both the resident set and the scores that earned it.

Policies are deliberately unaware of results: they track fingerprints and
floats only, so every policy is bitwise-neutral -- it can change *which*
requests hit, never what any request answers.
"""

from __future__ import annotations

from repro.core.delta import DropTuplesDelta, ToleranceDelta

__all__ = [
    "CachePolicy",
    "CostAwarePolicy",
    "POLICY_NAMES",
    "make_policy",
    "PREDICTABLE_DELTA_KINDS",
    "predict_next_deltas",
]


class CachePolicy:
    """Scoring/eviction strategy plugged into :class:`ResultCache`.

    The cache keeps the entries; the policy keeps per-key metadata and
    answers one question -- :meth:`victim` -- when the cache is over
    capacity.  ``None`` (no policy object) is the cache's plain-LRU fast
    path; subclasses only need the hooks they care about.
    """

    name = "base"

    def on_access(self, key: str) -> None:
        """A resident entry served a lookup."""

    def on_store(self, key: str, cost: float) -> None:
        """An entry was inserted (solve result, disk promotion, or reload)."""

    def forget(self, key: str) -> None:
        """An entry left the cache (eviction or clear)."""

    def victim(self, resident) -> str:
        """The key to evict from ``resident`` (an ordered key view)."""
        raise NotImplementedError

    def score(self, key: str) -> float:
        """Current keep-priority of a key (higher = keep longer)."""
        return 0.0

    def export_entries(self, keys) -> list[dict]:
        """Wire form of the hot-set metadata for ``keys`` (cache order kept)."""
        return [{"fingerprint": key} for key in keys]

    def seed(self, entry: dict) -> None:
        """Restore one :meth:`export_entries` record (restart recovery)."""

    def clear(self) -> None:
        """Drop all per-key metadata."""


class CostAwarePolicy(CachePolicy):
    """Evict by ``EWMA hit-frequency x recompute cost``, not recency.

    Per key the policy tracks an exponentially decayed access count (the
    hit-probability estimate: each access adds 1, and the total halves
    every ``halflife`` cache accesses) and the largest recompute cost
    observed for the key.  The keep-score is their product, so the cache
    retains entries that are *both* likely to be asked again *and*
    expensive to lose; ties fall back to the cache's own order (oldest
    first), which keeps eviction deterministic.

    Args:
        halflife: Accesses over which a key's frequency estimate halves.
            Small values adapt fast but forget the hot set quickly; the
            default keeps a key "hot" for a few working-set laps.
        default_cost: Floor for recorded costs, so entries whose solve was
            too fast to measure (or promoted hits with no recorded cost)
            still rank by frequency instead of collapsing to score zero.
    """

    name = "cost"

    def __init__(self, halflife: float = 32.0, default_cost: float = 1e-6):
        if halflife <= 0:
            raise ValueError("halflife must be positive")
        if default_cost <= 0:
            raise ValueError("default_cost must be positive")
        self.halflife = float(halflife)
        self.default_cost = float(default_cost)
        self._clock = 0
        # key -> [decayed access count at `tick`, max cost seen, tick]
        self._meta: dict[str, list] = {}

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _decayed(self, entry: list) -> float:
        gap = self._clock - entry[2]
        if gap <= 0:
            return entry[0]
        return entry[0] * (0.5 ** (gap / self.halflife))

    def _touch(self, key: str, cost: float | None) -> None:
        now = self._tick()
        entry = self._meta.get(key)
        if entry is None:
            self._meta[key] = [1.0, max(cost or 0.0, 0.0), now]
            return
        entry[0] = self._decayed(entry) + 1.0
        if cost is not None:
            entry[1] = max(entry[1], cost)
        entry[2] = now

    def on_access(self, key: str) -> None:
        self._touch(key, None)

    def on_store(self, key: str, cost: float) -> None:
        self._touch(key, float(cost))

    def forget(self, key: str) -> None:
        self._meta.pop(key, None)

    def score(self, key: str) -> float:
        entry = self._meta.get(key)
        if entry is None:
            return 0.0
        return self._decayed(entry) * max(entry[1], self.default_cost)

    def victim(self, resident) -> str:
        # min() keeps the first minimum it sees; iterating the cache's own
        # (insertion/recency) order makes ties evict oldest-first.
        return min(resident, key=self.score)

    def export_entries(self, keys) -> list[dict]:
        entries = []
        for key in keys:
            meta = self._meta.get(key)
            entries.append(
                {
                    "fingerprint": key,
                    "score": self.score(key),
                    "freq": self._decayed(meta) if meta is not None else 0.0,
                    "cost": meta[1] if meta is not None else 0.0,
                }
            )
        return entries

    def seed(self, entry: dict) -> None:
        key = entry["fingerprint"]
        self._meta[key] = [
            max(float(entry.get("freq", 1.0)), 1.0),
            max(float(entry.get("cost", 0.0)), 0.0),
            self._clock,
        ]

    def clear(self) -> None:
        self._meta.clear()


#: Registered policy names.  ``"lru"`` is the no-policy fast path: the cache
#: falls back to its ordered-dict recency eviction, byte-for-byte the
#: pre-policy behaviour.
POLICY_NAMES: tuple[str, ...] = ("lru", "cost")


def make_policy(policy, **options) -> CachePolicy | None:
    """Resolve a policy spec (name, instance, or ``None``) to an instance.

    ``"lru"`` and ``None`` both return ``None`` -- plain LRU is the absence
    of a policy object, keeping the default path allocation-free.
    """
    if policy is None or policy == "lru":
        return None
    if isinstance(policy, CachePolicy):
        return policy
    if policy == "cost":
        return CostAwarePolicy(**options)
    raise ValueError(
        f"unknown cache policy {policy!r}; expected one of {POLICY_NAMES}"
    )


#: Delta kinds whose next state is predictable from the current head alone.
#: ``tolerance`` mirrors ``mutation_delta(kind="tighten_tolerance")`` exactly
#: (halving is deterministic); ``drop_tuples`` mirrors
#: ``mutation_delta(kind="drop_unranked")`` up to *which* unranked tuple the
#: analyst drops, so the prewarmer emits one candidate per unranked index
#: (bounded by its limit).
PREDICTABLE_DELTA_KINDS: tuple[str, ...] = ("tolerance", "drop_tuples")


def predict_next_deltas(problem, kind_counts: dict, limit: int = 2) -> list:
    """Likely next edit chains for ``problem``, most probable first.

    ``kind_counts`` maps observed delta kinds to occurrence counts (the
    serving layer accumulates them from the session edit stream / workload
    profile); kinds the workload has actually used rank first, with the
    declaration order of :data:`PREDICTABLE_DELTA_KINDS` as the cold-start
    tiebreak.  Returns ``[(deltas, kind), ...]`` with at most ``limit``
    candidates; each ``deltas`` list applies to ``problem`` to produce the
    predicted child state.  The constructions intentionally match
    ``scenarios.mutation_delta()`` parameter-for-parameter, so a prewarmed
    child's composed fingerprint equals the session edit's -- the whole
    point of prewarming is turning the analyst's next edit into an exact
    cache hit.
    """
    if limit < 1:
        return []
    ranked = sorted(
        PREDICTABLE_DELTA_KINDS,
        key=lambda kind: (
            -int(kind_counts.get(kind, 0)),
            PREDICTABLE_DELTA_KINDS.index(kind),
        ),
    )
    candidates: list = []
    for kind in ranked:
        if len(candidates) >= limit:
            break
        if kind == "tolerance":
            old = problem.tolerances
            candidates.append(
                (
                    [
                        ToleranceDelta(
                            tie_eps=old.tie_eps / 2.0,
                            eps1=old.eps1 / 2.0,
                            eps2=old.eps2 / 2.0,
                        )
                    ],
                    "tolerance",
                )
            )
        elif kind == "drop_tuples":
            unranked = problem.ranking.unranked_indices()
            for index in unranked[: limit - len(candidates)]:
                candidates.append(
                    ([DropTuplesDelta(indices=(int(index),))], "drop_tuples")
                )
    return candidates[:limit]
