"""Module-level task functions the process backend can pickle.

``ProcessPoolExecutor`` ships tasks to workers by pickling the callable and
its payload; closures and bound methods do not survive that trip, so every
function the engine fans out lives here (or at module level next to its
algorithm).  Payloads are plain tuples of picklable objects --
:class:`~repro.core.problem.RankingProblem` and every options dataclass
pickle cleanly.
"""

from __future__ import annotations

from repro.baselines.adarank import AdaRankBaseline
from repro.baselines.linear_regression import LinearRegressionBaseline
from repro.baselines.ordinal_regression import OrdinalRegressionBaseline
from repro.baselines.sampling import SamplingBaseline, SamplingOptions
from repro.core.problem import RankingProblem
from repro.core.rankhow import RankHow, RankHowOptions
from repro.core.result import SynthesisResult
from repro.core.symgd import SymGD, SymGDOptions

__all__ = [
    "SOLVE_METHODS",
    "validate_params",
    "effective_params",
    "build_solver",
    "solve_request_task",
]

#: Methods the engine (and therefore the query service) can dispatch.
SOLVE_METHODS: tuple[str, ...] = (
    "rankhow",
    "symgd",
    "symgd_adaptive",
    "sampling",
    "ordinal_regression",
    "linear_regression",
    "adarank",
)

#: Wire-format keys each method accepts.  ``adaptive`` is excluded for the
#: SYM-GD methods because the method name itself decides it; ``chunk_size``
#: is excluded for sampling because the service path never uses the chunked
#: executor, so the knob could only fragment the fingerprint space.
_RANKHOW_KEYS = set(RankHowOptions.__dataclass_fields__)
_SYMGD_KEYS = set(SymGDOptions.__dataclass_fields__) - {"adaptive"}
_PARAM_KEYS: dict[str, set[str]] = {
    "rankhow": _RANKHOW_KEYS,
    "symgd": _SYMGD_KEYS,
    "symgd_adaptive": _SYMGD_KEYS,
    "sampling": set(SamplingOptions.__dataclass_fields__) - {"chunk_size"},
    "ordinal_regression": set(),
    "linear_regression": set(),
    "adarank": set(),
}


def validate_params(method: str, params: dict | None) -> None:
    """Reject unknown wire params instead of silently ignoring them.

    A misplaced key (say a top-level ``node_limit`` on a ``symgd`` request,
    or a typo inside its nested ``solver_options``) would otherwise change
    the request fingerprint -- fragmenting the cache -- while having no
    effect on the solve.  Failing loudly keeps the fingerprint space aligned
    with actual solver behaviour.
    """
    if method not in _PARAM_KEYS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {SOLVE_METHODS}"
        )
    params = params or {}
    unknown = set(params) - _PARAM_KEYS[method]
    if unknown:
        allowed = sorted(_PARAM_KEYS[method]) or "none"
        raise ValueError(
            f"unknown parameter(s) for method {method!r}: {sorted(unknown)} "
            f"(allowed: {allowed})"
        )
    nested = params.get("solver_options")
    if method in ("symgd", "symgd_adaptive") and nested is not None:
        nested_unknown = set(nested) - _RANKHOW_KEYS
        if nested_unknown:
            raise ValueError(
                f"unknown solver_options key(s) for method {method!r}: "
                f"{sorted(nested_unknown)} (allowed: {sorted(_RANKHOW_KEYS)})"
            )


def effective_params(method: str, params: dict | None = None) -> dict:
    """The canonical post-merge options a ``(method, params)`` pair resolves to.

    Wire params are merged over service-friendly defaults (modest node
    limits, no exact verification for the heuristic methods; nested
    ``solver_options`` deep-merged so tweaking one knob does not silently
    re-enable exact verification), then every remaining default is spelled
    out via the options ``to_dict``.  Requests are fingerprinted on *this*
    dict, so ``{}`` and ``{"cell_size": 0.1}`` (a default written out
    explicitly) address the same cache entry.
    """
    params = dict(params or {})
    validate_params(method, params)
    if method == "rankhow":
        defaults = {"node_limit": 2000, "time_limit": 30.0}
        return RankHowOptions.from_dict({**defaults, **params}).to_dict()
    if method in ("symgd", "symgd_adaptive"):
        merged = {
            "cell_size": 1e-4 if method == "symgd_adaptive" else 0.1,
            **params,
        }
        merged["solver_options"] = {
            "node_limit": 500,
            "verify": False,
            "warm_start_strategy": "none",
            **(params.get("solver_options") or {}),
        }
        merged["adaptive"] = method == "symgd_adaptive"
        return SymGDOptions.from_dict(merged).to_dict()
    if method == "sampling":
        return SamplingOptions(**params).to_dict()
    return {}


def _solver_from_effective(method: str, effective: dict):
    """Solver callable from already-resolved (post-merge) options."""
    if method == "rankhow":
        return RankHow(RankHowOptions.from_dict(effective)).solve
    if method in ("symgd", "symgd_adaptive"):
        return SymGD(SymGDOptions.from_dict(effective)).solve
    if method == "sampling":
        return SamplingBaseline(SamplingOptions(**effective)).solve
    if method == "ordinal_regression":
        return OrdinalRegressionBaseline().solve
    if method == "linear_regression":
        return LinearRegressionBaseline().solve
    if method == "adarank":
        return AdaRankBaseline().solve
    raise ValueError(f"unknown method {method!r}; expected one of {SOLVE_METHODS}")


def build_solver(method: str, params: dict | None = None):
    """Turn ``(method, params)`` into a ``problem -> SynthesisResult`` callable.

    ``params`` is the wire-format options mapping; it is resolved through
    :func:`effective_params`, so the solver configuration is exactly what the
    request fingerprint covers.
    """
    return _solver_from_effective(method, effective_params(method, params))


def solve_request_task(payload: tuple) -> SynthesisResult:
    """Solve one ``(problem, method, effective_params)`` request.

    Picklable entry point for the executors; the options dict is expected to
    be already resolved (see :func:`effective_params`) so the work the
    front-end did for fingerprinting is not repeated in the worker.
    """
    problem, method, effective = payload
    assert isinstance(problem, RankingProblem)
    return _solver_from_effective(method, effective)(problem)
