"""Module-level task functions the process backend can pickle.

``ProcessPoolExecutor`` ships tasks to workers by pickling the callable and
its payload; closures and bound methods do not survive that trip, so every
function the engine fans out lives here (or at module level next to its
algorithm).  Payloads are plain tuples of picklable objects --
:class:`~repro.core.problem.RankingProblem` and every options dataclass
pickle cleanly.

Method dispatch itself lives in the :mod:`repro.api` registry; this module
is the thin, picklable bridge between the executor backends and the
registered :class:`~repro.api.registry.SynthesisMethod` adapters.  The
helpers (:func:`validate_params`, :func:`effective_params`,
:func:`build_solver`) are kept as delegating aliases for callers that grew
up against the pre-registry engine API.
"""

from __future__ import annotations

from repro.api.registry import GLOBAL_REGISTRY, get_method
from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult

__all__ = [
    "SOLVE_METHODS",
    "validate_params",
    "effective_params",
    "build_solver",
    "solve_request_task",
    "cell_bounds_task",
]

#: Methods the engine (and therefore the query service) can dispatch.
#: Snapshot of the registry at import time; use
#: :func:`repro.api.list_methods` for a live view that includes methods
#: registered later.
SOLVE_METHODS: tuple[str, ...] = GLOBAL_REGISTRY.names()


def validate_params(method: str, params: dict | None) -> None:
    """Reject unknown wire params instead of silently ignoring them.

    A misplaced key (say a top-level ``node_limit`` on a ``symgd`` request,
    or a typo inside its nested ``solver_options``) would otherwise change
    the request fingerprint -- fragmenting the cache -- while having no
    effect on the solve.  Failing loudly keeps the fingerprint space aligned
    with actual solver behaviour.
    """
    get_method(method).validate_options(params)


def effective_params(method: str, params: dict | None = None) -> dict:
    """The canonical post-merge options a ``(method, params)`` pair resolves to.

    Wire params are merged over the method's service-friendly defaults and
    every remaining default is spelled out, so ``{}`` and a default written
    out explicitly address the same cache entry (see
    :meth:`~repro.api.registry.SynthesisMethod.resolve_options`).
    """
    return get_method(method).resolve_options(params)


def build_solver(method: str, params: dict | None = None):
    """Turn ``(method, params)`` into a ``problem -> SynthesisResult`` callable.

    ``params`` is the wire-format options mapping; it is resolved through the
    method's :meth:`resolve_options`, so the solver configuration is exactly
    what the request fingerprint covers.
    """
    adapter = get_method(method)
    return adapter.build(adapter.resolve_options(params)).solve


def solve_request_task(payload: tuple) -> SynthesisResult:
    """Solve one ``(problem, method, effective_params)`` request.

    Picklable entry point for the executors; the options dict is expected to
    be already resolved (see :func:`effective_params`) so the work the
    front-end did for fingerprinting is not repeated in the worker.

    ``method`` may be the registered name or the
    :class:`~repro.api.registry.SynthesisMethod` instance itself.  The engine
    sends the instance: it pickles by reference, so a process-pool worker
    imports the adapter's defining module (registering it as a side effect)
    instead of depending on the worker's registry already containing a
    method that was registered at runtime in the parent.
    """
    problem, method, effective = payload
    assert isinstance(problem, RankingProblem)
    if isinstance(method, str):
        method = get_method(method)
    return method.synthesize_resolved(problem, effective)


def cell_bounds_task(payload: tuple) -> list[tuple[int, int]]:
    """Evaluate cell-error bounds for one ``(problem, cells, vectorized)`` chunk.

    Picklable alias of the chunk task behind
    :func:`repro.core.cells.cell_error_bounds_many`; exposed here so custom
    ``map_cells`` sweeps can fan the batched classifier out over a process
    pool without reaching into a private name.
    """
    from repro.core.cells import _bounds_chunk_task

    return _bounds_chunk_task(payload)
