"""The solve engine: executor + content-addressed cache behind one facade.

:class:`SolveEngine` is what the query service (and any batch caller) talks
to.  It owns an executor backend and a :class:`~repro.engine.cache.ResultCache`
and exposes three operations:

* ``solve`` / ``solve_batch`` -- answer how-to-rank requests, deduplicating
  identical requests inside a batch, serving repeats from the cache, and
  fanning the remaining distinct solves out over the executor;
* ``multi_seed_symgd`` -- the parallel multi-seed SYM-GD entry point used by
  the scaling benchmark;
* ``map_cells`` -- raw access to the executor for custom sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.api.registry import get_method
from repro.api.request import SynthesisRequest
from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult
from repro.core.symgd import SymGD, SymGDOptions
from repro.engine.cache import ResultCache
from repro.engine.executor import Executor, get_executor
from repro.engine.tasks import solve_request_task

__all__ = ["SolveRequest", "SolveOutcome", "SolveEngine"]

#: The engine-level name for one how-to-rank request.  There is exactly one
#: implementation of the request contract (problem + method + wire options,
#: construction-time validation, cached resolved options and fingerprint):
#: :class:`repro.api.request.SynthesisRequest`.  Aliasing it keeps the client
#: path and the service path fingerprint-compatible by construction.
SolveRequest = SynthesisRequest


@dataclass
class SolveOutcome:
    """A solved request plus how it was served."""

    result: SynthesisResult
    fingerprint: str
    cache_hit: bool
    wall_time: float

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "wall_time": self.wall_time,
        }


class SolveEngine:
    """Parallel, cached execution substrate for how-to-rank requests.

    Args:
        backend: Executor backend name or instance (``serial`` / ``thread`` /
            ``process`` / ``auto``).
        max_workers: Worker cap for pooled backends.
        cache: An existing :class:`ResultCache` to share, or ``None`` to
            create one from ``cache_capacity`` / ``cache_dir``.
        cache_capacity: In-memory LRU size for the created cache.
        cache_dir: Optional on-disk JSON tier for the created cache.
    """

    def __init__(
        self,
        backend: str | Executor = "serial",
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        cache_capacity: int = 512,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.executor = get_executor(backend, max_workers)
        # Explicit None check: an empty ResultCache is falsy (it has __len__).
        self.cache = (
            cache
            if cache is not None
            else ResultCache(capacity=cache_capacity, disk_path=cache_dir)
        )
        self.solver_invocations = 0

    # -- request solving ------------------------------------------------------

    def solve(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
    ) -> SolveOutcome:
        """Solve one request (cache-aware); see :meth:`solve_batch`."""
        return self.solve_batch([SolveRequest(problem, method, dict(params or {}))])[0]

    def solve_batch(self, requests: list[SolveRequest]) -> list[SolveOutcome]:
        """Solve a micro-batch of requests.

        Identical requests inside the batch collapse onto one solve; requests
        seen before are answered from the cache without invoking any solver;
        the remaining distinct misses run on the executor in parallel.  The
        returned list is aligned with ``requests``.
        """
        start = time.perf_counter()
        keys = [request.fingerprint for request in requests]

        cached: dict[str, SynthesisResult] = {}
        pending: dict[str, SolveRequest] = {}
        for key, request in zip(keys, requests):
            if key in cached or key in pending:
                continue
            result = self.cache.get(key)
            if result is not None:
                cached[key] = result
            else:
                pending[key] = request

        if pending:
            # The method adapter travels as an object (not a name).  The
            # instance pickles by value, but its *class* pickles by
            # reference, so unpickling in a process worker imports the
            # adapter's defining module (re-running its registration); a
            # runtime-registered method from an importable module therefore
            # solves correctly even under spawn-based pools.
            payloads = [
                (request.problem, get_method(request.method), request.effective)
                for request in pending.values()
            ]
            self.solver_invocations += len(payloads)
            solved = self.executor.map_cells(solve_request_task, payloads)
            for key, result in zip(pending.keys(), solved):
                self.cache.put(key, result)
                cached[key] = result

        wall = time.perf_counter() - start
        outcomes = []
        emitted: set[str] = set()
        for key in keys:
            result = cached[key]
            # Duplicates of one fingerprint inside a batch get private
            # copies, matching the cache's no-aliasing guarantee.
            if key in emitted:
                result = result.copy()
            emitted.add(key)
            outcomes.append(
                SolveOutcome(
                    result=result,
                    fingerprint=key,
                    cache_hit=key not in pending,
                    wall_time=wall,
                )
            )
        return outcomes

    # -- parallel primitives --------------------------------------------------

    def multi_seed_symgd(
        self,
        problem: RankingProblem,
        options: SymGDOptions | None = None,
        num_seeds: int = 4,
        seeds=None,
        vectorized: bool = False,
    ) -> SynthesisResult:
        """Parallel multi-seed SYM-GD on this engine's executor.

        ``vectorized=True`` bypasses the executor and drives all seeds
        in-process as one lockstep weight matrix (see
        :meth:`SymGD.solve_multi_seed`) -- the right choice on single-core
        hosts where a pool only adds overhead; the merged result is
        identical either way.
        """
        solver = SymGD(options)
        if vectorized:
            return solver.solve_multi_seed(
                problem, seeds=seeds, num_seeds=num_seeds, vectorized=True
            )
        return solver.solve_multi_seed(
            problem, seeds=seeds, num_seeds=num_seeds, executor=self.executor
        )

    def map_cells(self, fn, items) -> list:
        """Raw ordered map on the executor (for custom per-cell sweeps)."""
        return self.executor.map_cells(fn, items)

    def cell_error_bounds(self, problem: RankingProblem, cells, vectorized: bool = True):
        """Batched cell-error bounds fanned out over this engine's executor.

        Thin wrapper over :func:`repro.core.cells.cell_error_bounds_many` so
        service-side sweeps (grid seeding, cell heat maps) get the batched
        classification and the executor fan-out in one call.
        """
        from repro.core.cells import cell_error_bounds_many

        return cell_error_bounds_many(
            problem, cells, executor=self.executor, vectorized=vectorized
        )

    # -- lifecycle / telemetry ------------------------------------------------

    def stats(self) -> dict:
        """Executor and cache counters plus the solver-invocation count."""
        return {
            "backend": self.executor.name,
            "max_workers": self.executor.max_workers,
            "solver_invocations": self.solver_invocations,
            "executor": self.executor.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
        }

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
