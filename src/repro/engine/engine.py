"""The solve engine: executor + content-addressed cache behind one facade.

:class:`SolveEngine` is what the query service (and any batch caller) talks
to.  It owns an executor backend and a :class:`~repro.engine.cache.ResultCache`
and exposes three operations:

* ``solve`` / ``solve_batch`` -- answer how-to-rank requests, deduplicating
  identical requests inside a batch, serving repeats from the cache, and
  fanning the remaining distinct solves out over the executor;
* ``multi_seed_symgd`` -- the parallel multi-seed SYM-GD entry point used by
  the scaling benchmark;
* ``map_cells`` -- raw access to the executor for custom sweeps.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.api.registry import get_method
from repro.api.request import SynthesisRequest
from repro.core import chunking
from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult
from repro.core.symgd import SymGD, SymGDOptions
from repro.engine.cache import CacheStats, ResultCache
from repro.engine.context import SolveArtifacts, SolveContext
from repro.engine.executor import Executor, ExecutorStats, get_executor
from repro.engine.tasks import solve_request_task
from repro.obs.trace import adopt_results, pack_tasks, run_packed_task

__all__ = ["SolveRequest", "SolveOutcome", "IncrementalStats", "SolveEngine"]

#: The engine-level name for one how-to-rank request.  There is exactly one
#: implementation of the request contract (problem + method + wire options,
#: construction-time validation, cached resolved options and fingerprint):
#: :class:`repro.api.request.SynthesisRequest`.  Aliasing it keeps the client
#: path and the service path fingerprint-compatible by construction.
SolveRequest = SynthesisRequest


@dataclass
class SolveOutcome:
    """A solved request plus how it was served.

    ``served`` is set by the delta-aware incremental path only: ``"exact"``
    (cache hit on the child fingerprint), ``"warm"`` (solved with parent
    artifacts), or ``"cold"`` (solved from scratch).  Batch-path outcomes
    leave it ``None``, keeping their wire format unchanged.
    """

    result: SynthesisResult
    fingerprint: str
    cache_hit: bool
    wall_time: float
    served: str | None = None

    def to_dict(self) -> dict:
        payload = {
            "result": self.result.to_dict(),
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "wall_time": self.wall_time,
        }
        if self.served is not None:
            payload["served"] = self.served
        return payload


@dataclass
class IncrementalStats:
    """Counters for the delta-aware solve path (exposed in engine stats)."""

    exact_hits: int = 0
    parent_hits: int = 0
    cold_solves: int = 0

    @property
    def solves(self) -> int:
        return self.exact_hits + self.parent_hits + self.cold_solves

    def as_dict(self) -> dict:
        return {
            "exact_hits": self.exact_hits,
            "parent_hits": self.parent_hits,
            "cold_solves": self.cold_solves,
        }


class SolveEngine:
    """Parallel, cached execution substrate for how-to-rank requests.

    Args:
        backend: Executor backend name or instance (``serial`` / ``thread`` /
            ``process`` / ``auto``).
        max_workers: Worker cap for pooled backends.
        cache: An existing :class:`ResultCache` to share, or ``None`` to
            create one from ``cache_capacity`` / ``cache_dir``.
        cache_capacity: In-memory LRU size for the created cache.
        cache_dir: Optional on-disk JSON tier for the created cache.
        cache_policy: Eviction policy for the created cache (``"lru"`` --
            the default recency LRU -- or ``"cost"`` for recompute-cost x
            hit-frequency scoring); ignored when an existing ``cache`` is
            shared.  Policies are answer-neutral: they change which keys
            stay resident, never what any request returns.
        obs: Optional :class:`~repro.obs.Observability` bundle.  With a
            tracer, every dispatch opens spans (cache decision, executor
            queue-wait/run, solver internals); with a metrics registry, the
            engine's counters surface as export-time collector series.
            ``None`` (the default) costs nothing on any path.
    """

    def __init__(
        self,
        backend: str | Executor = "serial",
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        cache_capacity: int = 512,
        cache_dir: str | Path | None = None,
        cache_policy: str | None = None,
        obs=None,
    ) -> None:
        self.executor = get_executor(backend, max_workers)
        # Explicit None check: an empty ResultCache is falsy (it has __len__).
        self.cache = (
            cache
            if cache is not None
            else ResultCache(
                capacity=cache_capacity, disk_path=cache_dir, policy=cache_policy
            )
        )
        self.solver_invocations = 0
        self.prewarm_solves = 0
        self.pruned_tuples_total = 0
        self.incremental_stats = IncrementalStats()
        self.obs = None
        if obs is not None:
            self.attach_obs(obs)
        # Side table of cross-solve artifacts (root LP bases, incumbent
        # weights, cell evaluators) keyed by *request* fingerprint.  Kept out
        # of the result cache on purpose: artifacts are process-local
        # accelerators, not part of any result's wire format, so the cold
        # path's bytes stay untouched.
        self._artifact_capacity = 64
        self._artifacts: OrderedDict[str, SolveArtifacts] = OrderedDict()
        self._artifact_lock = threading.Lock()

    # -- observability --------------------------------------------------------

    def attach_obs(self, obs) -> None:
        """Attach an :class:`~repro.obs.Observability` bundle (idempotent).

        Registers the engine's collector on the bundle's metrics registry so
        cache / executor / incremental counters appear in every export
        without double bookkeeping.  A server sharing its bundle with an
        existing engine calls this instead of rebuilding the engine.
        """
        if obs is self.obs:
            return
        self.obs = obs
        if obs is not None and obs.metrics is not None:
            obs.metrics.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> dict:
        """Engine counters as export-time metric series (see MetricsRegistry)."""
        cache = self.cache.stats
        executor = self.executor.stats
        incremental = self.incremental_stats
        dataplane = chunking.counters()
        return {
            "repro_engine_solver_invocations_total": (
                "counter", "Solver invocations", float(self.solver_invocations),
            ),
            "repro_engine_cache_hits_total": (
                "counter", "Result-cache hits", float(cache.hits),
            ),
            "repro_engine_cache_misses_total": (
                "counter", "Result-cache misses", float(cache.misses),
            ),
            "repro_engine_cache_evictions_total": (
                "counter", "Result-cache evictions", float(cache.evictions),
            ),
            "repro_engine_cache_disk_hits_total": (
                "counter", "Result-cache disk-tier hits", float(cache.disk_hits),
            ),
            "repro_engine_cache_promotions_total": (
                "counter",
                "Stats-neutral disk-to-memory promotions",
                float(cache.promotions),
            ),
            "repro_engine_cache_quarantined_total": (
                "counter",
                "Corrupt disk-tier entries quarantined and served as misses",
                float(cache.quarantined),
            ),
            "repro_engine_prewarm_solves_total": (
                "counter",
                "Speculative solves spent on prewarm predictions",
                float(self.prewarm_solves),
            ),
            "repro_engine_executor_tasks_total": (
                "counter", "Executor tasks fanned out", float(executor.tasks),
            ),
            "repro_engine_executor_batches_total": (
                "counter", "Executor map batches", float(executor.batches),
            ),
            "repro_engine_incremental_served_total": (
                "counter",
                "Incremental solves by fallback tier",
                {
                    ("exact",): float(incremental.exact_hits),
                    ("warm",): float(incremental.parent_hits),
                    ("cold",): float(incremental.cold_solves),
                },
                ("tier",),
            ),
            "repro_engine_pruned_tuples_total": (
                "counter",
                "Tuples removed by the rank-dominance presolve",
                float(self.pruned_tuples_total),
            ),
            "repro_engine_chunked_evals_total": (
                "counter",
                "Evaluations that took a bounded-memory chunked path",
                float(dataplane["chunked_evals_total"]),
            ),
            "repro_engine_peak_chunk_bytes": (
                "gauge",
                "High-water transient block size of the chunked data plane",
                float(dataplane["peak_chunk_bytes"]),
            ),
        }

    def _harvest_dataplane(self, result: SynthesisResult) -> None:
        """Fold one solve's rank-dominance prune count into the engine total.

        Chunked-evaluation counters need no harvesting -- they accumulate in
        :mod:`repro.core.chunking` directly -- but prune counts travel in
        each result's diagnostics (the prune runs inside the solver, possibly
        in an executor worker), so the engine adds them up here.
        """
        pruned = result.diagnostics.get("pruned_tuples", 0)
        if pruned:
            with self._artifact_lock:
                self.pruned_tuples_total += int(pruned)

    def _tracer(self):
        obs = self.obs
        if obs is not None and obs.tracer is not None and obs.tracer.enabled:
            return obs.tracer
        return None

    def reset_stats(self) -> None:
        """Zero every counter reported by :meth:`stats`.

        Bench/export consumers call this between measurement legs so the
        schema test can assert monotonic growth from a known origin.  The
        cache and executor stats objects are replaced wholesale; note a
        *shared* cache's counters are reset for every engine sharing it.
        """
        with self._artifact_lock:
            self.solver_invocations = 0
            self.prewarm_solves = 0
            self.pruned_tuples_total = 0
            self.incremental_stats = IncrementalStats()
        self.executor.stats = ExecutorStats()
        self.cache.stats = CacheStats()
        chunking.reset_counters()

    # -- request solving ------------------------------------------------------

    def solve(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
    ) -> SolveOutcome:
        """Solve one request (cache-aware); see :meth:`solve_batch`."""
        return self.solve_batch([SolveRequest(problem, method, dict(params or {}))])[0]

    def solve_batch(
        self, requests: list[SolveRequest], contexts=None
    ) -> list[SolveOutcome]:
        """Solve a micro-batch of requests.

        Identical requests inside the batch collapse onto one solve; requests
        seen before are answered from the cache without invoking any solver;
        the remaining distinct misses run on the executor in parallel.  The
        returned list is aligned with ``requests``.

        ``contexts`` (optional, aligned with ``requests``) carries each
        request's parent :class:`~repro.obs.SpanContext` when tracing is on:
        every request gets an ``engine.dispatch`` span in its own trace
        recording the cache decision (``hit`` / ``miss`` / ``dedup``), and a
        miss's executor task span (queue wait vs. run time, plus the solver
        spans recorded inside the worker) nests under its dispatch span --
        including across the process backend, where span records travel back
        with the result and are re-attached here.
        """
        start = time.perf_counter()
        tracer = self._tracer()
        keys = [request.fingerprint for request in requests]

        cached: dict[str, SynthesisResult] = {}
        pending: dict[str, SolveRequest] = {}
        parent_ctx: dict[str, object] = {}
        for index, (key, request) in enumerate(zip(keys, requests)):
            if key in cached or key in pending:
                continue
            if tracer is not None and contexts is not None:
                parent_ctx[key] = contexts[index]
            result = self.cache.get(key)
            if result is not None:
                cached[key] = result
            else:
                pending[key] = request

        dispatch_spans: dict[str, object] = {}
        if pending:
            # The method adapter travels as an object (not a name).  The
            # instance pickles by value, but its *class* pickles by
            # reference, so unpickling in a process worker imports the
            # adapter's defining module (re-running its registration); a
            # runtime-registered method from an importable module therefore
            # solves correctly even under spawn-based pools.
            payloads = [
                (request.problem, get_method(request.method), request.effective)
                for request in pending.values()
            ]
            self.solver_invocations += len(payloads)
            if tracer is not None:
                for key, request in pending.items():
                    dispatch_spans[key] = tracer.span(
                        "engine.dispatch",
                        parent=parent_ctx.get(key),
                        outcome="miss",
                        fingerprint=key,
                        method=request.method,
                        backend=self.executor.name,
                        batch_size=len(requests),
                    )
                packed = pack_tasks(
                    solve_request_task,
                    payloads,
                    "engine.task",
                    contexts=[dispatch_spans[key].context for key in pending],
                )
                solved = adopt_results(
                    tracer, self.executor.map_cells(run_packed_task, packed)
                )
            else:
                solved = self.executor.map_cells(solve_request_task, payloads)
            # Thread each result's recompute cost into the cache so a
            # cost-aware policy can weigh it; the solver's own recorded
            # wall time is the honest number, with the batch's amortized
            # dispatch wall as the fallback for solvers too fast to time.
            shared_cost = (time.perf_counter() - start) / len(payloads)
            for key, result in zip(pending.keys(), solved):
                self._harvest_dataplane(result)
                self.cache.put(key, result, cost=result.solve_time or shared_cost)
                cached[key] = result
                span = dispatch_spans.get(key)
                if span is not None:
                    span.set_attribute("error", float(result.error))
                    span.finish()

        wall = time.perf_counter() - start
        outcomes = []
        emitted: set[str] = set()
        for index, key in enumerate(keys):
            result = cached[key]
            # Duplicates of one fingerprint inside a batch get private
            # copies, matching the cache's no-aliasing guarantee.
            duplicate = key in emitted
            if duplicate:
                result = result.copy()
            emitted.add(key)
            if tracer is not None and (duplicate or key not in pending):
                # Hits and intra-batch duplicates record an (instant)
                # dispatch span of their own so every request's trace shows
                # its cache decision exactly once; the fingerprint attribute
                # links a dedup copy back to the primary solve's span.
                tracer.span(
                    "engine.dispatch",
                    parent=contexts[index] if contexts is not None else None,
                    outcome="dedup" if duplicate else "hit",
                    fingerprint=key,
                    method=requests[index].method,
                    batch_size=len(requests),
                ).finish()
            outcomes.append(
                SolveOutcome(
                    result=result,
                    fingerprint=key,
                    cache_hit=key not in pending,
                    wall_time=wall,
                )
            )
        return outcomes

    # -- delta-aware incremental solving --------------------------------------

    def artifacts_for(self, request_fingerprint: str) -> SolveArtifacts | None:
        """Stored cross-solve artifacts for a request fingerprint, if any."""
        with self._artifact_lock:
            artifacts = self._artifacts.get(request_fingerprint)
            if artifacts is not None:
                self._artifacts.move_to_end(request_fingerprint)
            return artifacts

    def store_artifacts(self, artifacts: SolveArtifacts) -> None:
        """Stash cross-solve artifacts under their request fingerprint (LRU)."""
        with self._artifact_lock:
            self._artifacts[artifacts.request_fingerprint] = artifacts
            self._artifacts.move_to_end(artifacts.request_fingerprint)
            while len(self._artifacts) > self._artifact_capacity:
                self._artifacts.popitem(last=False)

    def solve_incremental(
        self,
        request: SolveRequest,
        parent_fingerprint: str | None = None,
        aggressive: bool = False,
    ) -> SolveOutcome:
        """Solve one request with the delta-aware fallback chain.

        When tracing is on, the solve runs inside an
        ``engine.solve_incremental`` span recording which tier served it
        (``exact``/``warm``/``cold``); the solver's own spans nest under it
        because incremental solves run in-process.

        Lookup falls through three tiers:

        1. **Exact hit** -- the request fingerprint is already cached (an
           edit chain revisited a state, e.g. a replayed/undone chain
           prefix); no solver runs.
        2. **Parent hit** -- artifacts captured from the parent solve of the
           edit chain (addressed by ``parent_fingerprint``, the previous
           request's fingerprint) travel with this solve; with
           ``aggressive`` set they actively warm-start it (the exact
           solver's root LP resumes from the parent's optimal basis and the
           parent's weights seed the incumbent).
        3. **Cold** -- no reusable state; the solve runs exactly as
           :meth:`solve` would.

        With ``aggressive`` off (the default) every tier returns
        byte-identical results to a cold solve of the same request: tier 1
        is the same request's cached result, and tier 2 attaches only
        output-invariant artifacts (the differential oracle's
        ``incremental_parity`` invariant checks this per scenario family).
        Aggressive mode trades that guarantee for pivots: under tied optima
        or a truncated node budget the solver may return a different
        representative within the same optimality guarantees.  The solve
        runs in-process (not on the executor): artifacts must survive the
        round trip, and an interactive session's latency is dominated by
        the solver, not by dispatch.
        """
        tracer = self._tracer()
        if tracer is None:
            return self._solve_incremental(request, parent_fingerprint, aggressive)
        with tracer.span(
            "engine.solve_incremental",
            method=request.method,
            fingerprint=request.fingerprint,
            aggressive=aggressive,
        ) as span:
            outcome = self._solve_incremental(request, parent_fingerprint, aggressive)
            span.set_attributes(served=outcome.served, cache_hit=outcome.cache_hit)
            return outcome

    def _solve_incremental(
        self,
        request: SolveRequest,
        parent_fingerprint: str | None,
        aggressive: bool,
    ) -> SolveOutcome:
        start = time.perf_counter()
        key = request.fingerprint
        cached = self.cache.get(key)
        if cached is not None:
            with self._artifact_lock:
                # Counter increments share the artifact lock: concurrent
                # session solves run on executor threads, and an
                # unsynchronized '+=' would silently drop telemetry.
                self.incremental_stats.exact_hits += 1
            return SolveOutcome(
                result=cached,
                fingerprint=key,
                cache_hit=True,
                wall_time=time.perf_counter() - start,
                served="exact",
            )

        warm = (
            self.artifacts_for(parent_fingerprint)
            if parent_fingerprint is not None and parent_fingerprint != key
            else None
        )
        context = SolveContext(
            warm=warm, reuse_basis=aggressive, reuse_incumbent=aggressive
        )
        method = get_method(request.method)
        with self._artifact_lock:
            self.solver_invocations += 1
        result = method.synthesize_resolved(
            request.problem, request.effective, context=context
        )
        self._harvest_dataplane(result)
        self.cache.put(key, result, cost=time.perf_counter() - start)
        context.capture_weights(result.weights)
        captured = context.captured
        captured.request_fingerprint = key
        captured.problem_fingerprint = request.problem.fingerprint()
        if (
            captured.cell_evaluator is None
            and warm is not None
            and warm.cell_evaluator is not None
        ):
            # Carry the batched cell evaluator along the chain: reuse it
            # verbatim for a same-content edit, row-update it for tuple /
            # tolerance deltas, and drop it (rebuild on demand) for
            # structural ones -- otherwise every solve would sever the
            # evaluator chain a session's cell_error_bounds() calls rely on.
            evaluator = warm.cell_evaluator.updated_for(request.problem)
            if evaluator is not None:
                captured.cell_evaluator = evaluator
        self.store_artifacts(captured)
        with self._artifact_lock:
            if warm is not None:
                self.incremental_stats.parent_hits += 1
            else:
                self.incremental_stats.cold_solves += 1
        return SolveOutcome(
            result=result,
            fingerprint=key,
            cache_hit=False,
            wall_time=time.perf_counter() - start,
            served="warm" if warm is not None else "cold",
        )

    def prewarm(self, request: SolveRequest) -> bool:
        """Make a *predicted* request resident without touching hit/miss stats.

        The service's background prewarmer calls this with the edit states
        :func:`~repro.engine.policy.predict_next_deltas` expects the analyst
        to visit next.  Cheapest win first: if the fingerprint is already in
        memory or on disk it is promoted (stats-neutral, see
        :meth:`ResultCache.promote`); otherwise the request is solved cold --
        the exact ``synthesize_resolved`` path a real miss would take, so a
        later session edit that lands on this fingerprint gets a
        byte-identical result as an exact hit.  Returns ``True`` once the
        entry is resident.  Speculative work is never free: the counter
        ``prewarm_solves`` (and ``solver_invocations``) records every solve
        spent on a prediction so operators can judge the gamble.
        """
        key = request.fingerprint
        if self.cache.promote(key):
            return True
        start = time.perf_counter()
        method = get_method(request.method)
        with self._artifact_lock:
            self.solver_invocations += 1
            self.prewarm_solves += 1
        result = method.synthesize_resolved(request.problem, request.effective)
        self._harvest_dataplane(result)
        self.cache.put(key, result, cost=time.perf_counter() - start)
        return True

    def solve_delta(
        self,
        base: RankingProblem,
        deltas,
        method: str = "symgd",
        params: dict | None = None,
        aggressive: bool = False,
    ) -> SolveOutcome:
        """Apply a delta chain to ``base`` and solve the edited problem.

        Convenience wrapper for one-shot callers: the parent request is
        ``(base, method, params)``, so if ``base`` was solved through this
        engine before, its artifacts warm-start the edited solve.  Session
        loops (:meth:`repro.api.client.RankHowClient.session`) track the
        parent fingerprint across many edits instead.
        """
        params = dict(params or {})
        child = base.apply_delta(deltas)
        if child is base:
            parent_fingerprint = None
        else:
            parent_fingerprint = SolveRequest(base, method, dict(params)).fingerprint
        return self.solve_incremental(
            SolveRequest(child, method, params),
            parent_fingerprint=parent_fingerprint,
            aggressive=aggressive,
        )

    # -- parallel primitives --------------------------------------------------

    def multi_seed_symgd(
        self,
        problem: RankingProblem,
        options: SymGDOptions | None = None,
        num_seeds: int = 4,
        seeds=None,
        vectorized: bool = False,
    ) -> SynthesisResult:
        """Parallel multi-seed SYM-GD on this engine's executor.

        ``vectorized=True`` bypasses the executor and drives all seeds
        in-process as one lockstep weight matrix (see
        :meth:`SymGD.solve_multi_seed`) -- the right choice on single-core
        hosts where a pool only adds overhead; the merged result is
        identical either way.
        """
        solver = SymGD(options)
        if vectorized:
            return solver.solve_multi_seed(
                problem, seeds=seeds, num_seeds=num_seeds, vectorized=True
            )
        return solver.solve_multi_seed(
            problem, seeds=seeds, num_seeds=num_seeds, executor=self.executor
        )

    def map_cells(self, fn, items) -> list:
        """Raw ordered map on the executor (for custom per-cell sweeps)."""
        return self.executor.map_cells(fn, items)

    def cell_error_bounds(
        self,
        problem: RankingProblem,
        cells,
        vectorized: bool = True,
        context: SolveContext | None = None,
    ):
        """Batched cell-error bounds fanned out over this engine's executor.

        Thin wrapper over :func:`repro.core.cells.cell_error_bounds_many` so
        service-side sweeps (grid seeding, cell heat maps) get the batched
        classification and the executor fan-out in one call.  With a
        ``context`` (the incremental session path) the batched evaluator is
        reused -- or incrementally row-updated for tuple deltas -- instead of
        being rebuilt per call, and the fan-out is skipped (the evaluator
        already classifies all cells as one matrix program in-process).
        """
        from repro.core.cells import cell_error_bounds_many

        if context is not None and vectorized:
            return context.evaluator_for(problem).bounds_many(list(cells))
        return cell_error_bounds_many(
            problem, cells, executor=self.executor, vectorized=vectorized
        )

    # -- lifecycle / telemetry ------------------------------------------------

    def stats(self) -> dict:
        """Executor and cache counters plus the solver-invocation count."""
        return {
            "backend": self.executor.name,
            "max_workers": self.executor.max_workers,
            "solver_invocations": self.solver_invocations,
            "prewarm_solves": self.prewarm_solves,
            "cache_policy": self.cache.policy_name,
            "executor": self.executor.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
            "incremental": self.incremental_stats.as_dict(),
            "dataplane": {
                "pruned_tuples_total": self.pruned_tuples_total,
                **chunking.counters(),
            },
        }

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
