"""The solve engine: executor + content-addressed cache behind one facade.

:class:`SolveEngine` is what the query service (and any batch caller) talks
to.  It owns an executor backend and a :class:`~repro.engine.cache.ResultCache`
and exposes three operations:

* ``solve`` / ``solve_batch`` -- answer how-to-rank requests, deduplicating
  identical requests inside a batch, serving repeats from the cache, and
  fanning the remaining distinct solves out over the executor;
* ``multi_seed_symgd`` -- the parallel multi-seed SYM-GD entry point used by
  the scaling benchmark;
* ``map_cells`` -- raw access to the executor for custom sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult
from repro.core.symgd import SymGD, SymGDOptions
from repro.engine.cache import ResultCache
from repro.engine.executor import Executor, get_executor
from repro.engine.fingerprint import fingerprint
from repro.engine.tasks import (
    SOLVE_METHODS,
    effective_params,
    solve_request_task,
    validate_params,
)

__all__ = ["SolveRequest", "SolveOutcome", "SolveEngine"]


@dataclass
class SolveRequest:
    """One how-to-rank request: a problem, a method name, and wire options."""

    problem: RankingProblem
    method: str = "symgd"
    params: dict = field(default_factory=dict)
    _fingerprint: str | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _effective: dict | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.method not in SOLVE_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; expected one of {SOLVE_METHODS}"
            )
        # Fail fast (at submit time, before fingerprinting or queueing) on
        # wire params the method would silently ignore.
        validate_params(self.method, self.params)

    @property
    def effective(self) -> dict:
        """Resolved post-merge options (computed once, reused by the worker)."""
        if self._effective is None:
            self._effective = effective_params(self.method, self.params)
        return self._effective

    @property
    def fingerprint(self) -> str:
        # Cached: the service front-end and the engine both ask, and hashing
        # the full attribute matrix is the dominant front-end cost.  The
        # digest covers the *effective* (post-merge) options, so spelling a
        # default out explicitly does not fragment the cache.
        if self._fingerprint is None:
            self._fingerprint = fingerprint(self.problem, self.method, self.effective)
        return self._fingerprint


@dataclass
class SolveOutcome:
    """A solved request plus how it was served."""

    result: SynthesisResult
    fingerprint: str
    cache_hit: bool
    wall_time: float

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "wall_time": self.wall_time,
        }


class SolveEngine:
    """Parallel, cached execution substrate for how-to-rank requests.

    Args:
        backend: Executor backend name or instance (``serial`` / ``thread`` /
            ``process`` / ``auto``).
        max_workers: Worker cap for pooled backends.
        cache: An existing :class:`ResultCache` to share, or ``None`` to
            create one from ``cache_capacity`` / ``cache_dir``.
        cache_capacity: In-memory LRU size for the created cache.
        cache_dir: Optional on-disk JSON tier for the created cache.
    """

    def __init__(
        self,
        backend: str | Executor = "serial",
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        cache_capacity: int = 512,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.executor = get_executor(backend, max_workers)
        # Explicit None check: an empty ResultCache is falsy (it has __len__).
        self.cache = (
            cache
            if cache is not None
            else ResultCache(capacity=cache_capacity, disk_path=cache_dir)
        )
        self.solver_invocations = 0

    # -- request solving ------------------------------------------------------

    def solve(
        self,
        problem: RankingProblem,
        method: str = "symgd",
        params: dict | None = None,
    ) -> SolveOutcome:
        """Solve one request (cache-aware); see :meth:`solve_batch`."""
        return self.solve_batch([SolveRequest(problem, method, dict(params or {}))])[0]

    def solve_batch(self, requests: list[SolveRequest]) -> list[SolveOutcome]:
        """Solve a micro-batch of requests.

        Identical requests inside the batch collapse onto one solve; requests
        seen before are answered from the cache without invoking any solver;
        the remaining distinct misses run on the executor in parallel.  The
        returned list is aligned with ``requests``.
        """
        start = time.perf_counter()
        keys = [request.fingerprint for request in requests]

        cached: dict[str, SynthesisResult] = {}
        pending: dict[str, SolveRequest] = {}
        for key, request in zip(keys, requests):
            if key in cached or key in pending:
                continue
            result = self.cache.get(key)
            if result is not None:
                cached[key] = result
            else:
                pending[key] = request

        if pending:
            payloads = [
                (request.problem, request.method, request.effective)
                for request in pending.values()
            ]
            self.solver_invocations += len(payloads)
            solved = self.executor.map_cells(solve_request_task, payloads)
            for key, result in zip(pending.keys(), solved):
                self.cache.put(key, result)
                cached[key] = result

        wall = time.perf_counter() - start
        outcomes = []
        emitted: set[str] = set()
        for key in keys:
            result = cached[key]
            # Duplicates of one fingerprint inside a batch get private
            # copies, matching the cache's no-aliasing guarantee.
            if key in emitted:
                result = result.copy()
            emitted.add(key)
            outcomes.append(
                SolveOutcome(
                    result=result,
                    fingerprint=key,
                    cache_hit=key not in pending,
                    wall_time=wall,
                )
            )
        return outcomes

    # -- parallel primitives --------------------------------------------------

    def multi_seed_symgd(
        self,
        problem: RankingProblem,
        options: SymGDOptions | None = None,
        num_seeds: int = 4,
        seeds=None,
    ) -> SynthesisResult:
        """Parallel multi-seed SYM-GD on this engine's executor."""
        solver = SymGD(options)
        return solver.solve_multi_seed(
            problem, seeds=seeds, num_seeds=num_seeds, executor=self.executor
        )

    def map_cells(self, fn, items) -> list:
        """Raw ordered map on the executor (for custom per-cell sweeps)."""
        return self.executor.map_cells(fn, items)

    # -- lifecycle / telemetry ------------------------------------------------

    def stats(self) -> dict:
        """Executor and cache counters plus the solver-invocation count."""
        return {
            "backend": self.executor.name,
            "max_workers": self.executor.max_workers,
            "solver_invocations": self.solver_invocations,
            "executor": self.executor.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
        }

    def close(self) -> None:
        self.executor.shutdown()

    def __enter__(self) -> "SolveEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
