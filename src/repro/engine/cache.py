"""Content-addressed result cache: in-memory LRU plus optional on-disk JSON.

Keys are the hex digests produced by :mod:`repro.engine.fingerprint`; values
are :class:`~repro.core.result.SynthesisResult` objects.  The in-memory layer
is an ordered-dict LRU guarded by a lock (the service's batching loop and the
thread backend both touch it concurrently); the optional disk layer writes one
``<digest>.json`` file per entry, so caches survive process restarts and can
be shared between a CLI run and a service instance.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.core.result import SynthesisResult
from repro.engine.policy import make_policy

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, exposed in service telemetry.

    ``promotions`` counts stats-neutral disk-to-memory promotions
    (:meth:`ResultCache.promote`): plumbing traffic -- gossip prefetches,
    hot-set reloads -- that must not pollute the hit/miss ratio an adaptive
    policy learns from.

    ``quarantined`` counts disk-tier entries set aside as unreadable --
    truncated/corrupt JSON, a payload that does not rebuild, or an envelope
    whose recorded fingerprint disagrees with its filename.  Each such read
    is served as a plain miss (the solve path never sees the corruption);
    the poisoned file is renamed ``*.quarantined`` so it cannot fail again.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    promotions: int = 0
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "promotions": self.promotions,
            "quarantined": self.quarantined,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU of fingerprint -> :class:`SynthesisResult` with optional disk tier.

    Args:
        capacity: Maximum in-memory entries; the least recently used entry is
            evicted first.  Evicted entries remain on disk (when a disk path
            is configured), so a later lookup can still be served without a
            solve.
        disk_path: Directory for the JSON tier; created on demand.  ``None``
            keeps the cache purely in memory.
        policy: Eviction policy -- a registered name (``"lru"`` / ``"cost"``),
            a :class:`~repro.engine.policy.CachePolicy` instance, or ``None``.
            ``"lru"``/``None`` keep the plain recency LRU (the historical
            behaviour); ``"cost"`` evicts by recompute-cost x EWMA
            hit-frequency score instead of recency.  Policies never change
            what a hit returns -- only which keys stay resident.
    """

    def __init__(
        self,
        capacity: int = 512,
        disk_path: str | Path | None = None,
        policy=None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.disk_path = Path(disk_path) if disk_path is not None else None
        self.policy = make_policy(policy)
        self.stats = CacheStats()
        self._entries: OrderedDict[str, SynthesisResult] = OrderedDict()
        self._lock = threading.Lock()
        #: Chaos hook: called as ``fault_hook(key, path)`` right before each
        #: disk-tier read (see :meth:`repro.chaos.ChaosInjector.cache_read_hook`).
        #: ``None`` (the default) costs one attribute check per disk probe.
        self.fault_hook = None

    @property
    def policy_name(self) -> str:
        return self.policy.name if self.policy is not None else "lru"

    # -- lookup / store -------------------------------------------------------

    def get(self, key: str) -> SynthesisResult | None:
        """Return a copy of the cached result for a fingerprint (``None`` on miss).

        Callers get a private copy: mutating the returned weights or
        diagnostics cannot corrupt the entry served to the next hit.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._note_access(key)
                self.stats.hits += 1
                return result.copy()
        disk_result = self._load_from_disk(key)
        with self._lock:
            # Re-check memory before declaring a miss: a concurrent put()
            # may have landed while the lock was released for the disk
            # probe, and recording its entry as a miss would both return a
            # stale None and corrupt the hit-rate signal adaptive policies
            # learn from.
            resident = self._entries.get(key)
            if resident is not None:
                self._note_access(key)
                self.stats.hits += 1
                return resident.copy()
            if disk_result is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(key, disk_result.copy(), cost=disk_result.solve_time)
            else:
                self.stats.misses += 1
        return disk_result

    def put(self, key: str, result: SynthesisResult, cost: float | None = None) -> None:
        """Store a result under a fingerprint (memory and, if set, disk).

        ``cost`` is the recompute wall time behind the result (the engine
        threads its measured solve time through); it feeds the cost-aware
        policy's keep-score and defaults to the result's own recorded
        ``solve_time``.
        """
        if cost is None:
            cost = result.solve_time
        with self._lock:
            self.stats.stores += 1
            # Store a private copy: the caller keeps (and may mutate) its own.
            self._insert(key, result.copy(), cost=cost)
        self._write_to_disk(key, result)

    def promote(self, key: str) -> bool:
        """Stats-neutral disk-to-memory promotion; returns residency.

        The cluster's hot-key gossip (and the hot-set reload on startup)
        pull entries into the memory LRU *speculatively* -- that traffic is
        plumbing, not workload, so it must not count as hits or misses: an
        adaptive policy trained on gossip-inflated counters would learn the
        cluster topology instead of the query stream.  Promotions get their
        own counter (``stats.promotions``) instead.
        """
        with self._lock:
            if key in self._entries:
                # Already resident: refresh nothing but recency-neutrally
                # report residency (no hit recorded, no reordering).
                return True
        result = self._load_from_disk(key)
        if result is None:
            return False
        with self._lock:
            if key not in self._entries:
                self.stats.promotions += 1
                self._insert(key, result, cost=result.solve_time)
        return True

    def get_or_compute(
        self, key: str, compute: Callable[[], SynthesisResult]
    ) -> tuple[SynthesisResult, bool]:
        """Return ``(result, cache_hit)``, invoking ``compute`` only on a miss."""
        result = self.get(key)
        if result is not None:
            return result, True
        result = compute()
        self.put(key, result)
        return result, False

    def _note_access(self, key: str) -> None:
        """Record a memory hit with the active policy (lock held)."""
        self._entries.move_to_end(key)
        if self.policy is not None:
            self.policy.on_access(key)

    def _insert(self, key: str, result: SynthesisResult, cost: float = 0.0) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        if self.policy is not None:
            self.policy.on_store(key, max(float(cost), 0.0))
        while len(self._entries) > self.capacity:
            if self.policy is not None:
                # Lowest keep-score goes -- which may be the entry just
                # inserted: evicting the newcomer is exactly the admission
                # filter that keeps scan traffic from displacing the hot
                # set (the entry still reaches the disk tier via put()).
                victim = self.policy.victim(self._entries)
                self._entries.pop(victim)
                self.policy.forget(victim)
            else:
                self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- disk tier ------------------------------------------------------------

    def _disk_file(self, key: str) -> Path | None:
        if self.disk_path is None:
            return None
        return self.disk_path / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Set a poisoned disk entry aside and count it (never raises).

        The file is renamed ``<name>.quarantined`` so (a) the next lookup
        of the same key is a clean miss-then-rewrite instead of re-parsing
        the same garbage, and (b) the evidence survives for forensics.  A
        rename that itself fails falls back to unlinking; if even that
        fails the entry is still served as a miss.
        """
        with self._lock:
            self.stats.quarantined += 1
        try:
            path.rename(path.with_name(path.name + ".quarantined"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def _load_from_disk(self, key: str) -> SynthesisResult | None:
        path = self._disk_file(key)
        if path is None or not path.is_file():
            return None
        if self.fault_hook is not None:
            self.fault_hook(key, path)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            # Corrupt bytes on disk: quarantine, then serve a miss.  (A
            # mid-rename torn read cannot happen -- writes go through
            # write-then-os.replace -- so garbage here is real corruption.)
            self._quarantine(path, "unparseable JSON")
            return None
        except OSError:
            # Transient I/O (permissions, disk going away): a miss, but not
            # the file's fault -- leave it in place.
            return None
        if isinstance(payload, dict) and "result" in payload and "key" in payload:
            # Self-identifying envelope (the current write format): verify
            # the recorded fingerprint against the filename-derived key, so
            # a misnamed/mislinked entry cannot serve the wrong answer.
            if payload.get("key") != key:
                self._quarantine(
                    path, f"fingerprint mismatch ({payload.get('key')!r})"
                )
                return None
            body = payload["result"]
        else:
            # Legacy bare-result files (pre-envelope) stay readable; they
            # carry no fingerprint to verify.
            body = payload
        try:
            return SynthesisResult.from_dict(body)
        except (KeyError, TypeError, ValueError, AttributeError):
            self._quarantine(path, "payload does not rebuild")
            return None

    def _write_to_disk(self, key: str, result: SynthesisResult) -> None:
        path = self._disk_file(key)
        if path is None:
            return
        # Everything disk-related sits inside the guard: a result that cannot
        # be serialized (exotic diagnostics), an unwritable directory, or a
        # full disk must not fail a solve that already succeeded -- the entry
        # simply stays memory-only.
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename keeps concurrent readers from seeing torn files.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # The envelope embeds the key so reads can detect an entry
                # whose payload does not belong to its filename.
                json.dump({"version": 1, "key": key, "result": result.to_dict()},
                          handle)
            os.replace(tmp_name, path)
        except (OSError, TypeError, ValueError):
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    # -- hot-set persistence --------------------------------------------------

    def save_hot_set(self, path: str | Path) -> int:
        """Serialize the resident set (keys + policy scores) to JSON.

        The file records fingerprints in cache order (least recently used
        first) plus, under a scoring policy, each key's score/frequency/cost
        metadata -- enough for :meth:`load_hot_set` to rebuild both the
        resident set and the priorities that earned it.  Returns the number
        of entries written; write failures are swallowed (a full disk must
        not fail a drain), leaving any previous file intact.
        """
        path = Path(path)
        with self._lock:
            keys = list(self._entries)
            if self.policy is not None:
                entries = self.policy.export_entries(keys)
            else:
                entries = [{"fingerprint": key} for key in keys]
        payload = {"version": 1, "policy": self.policy_name, "entries": entries}
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except (OSError, TypeError, ValueError):
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return 0
        return len(entries)

    def load_hot_set(self, path: str | Path) -> int:
        """Rebuild the memory tier from a :meth:`save_hot_set` file.

        Each recorded fingerprint is promoted from the disk tier
        (stats-neutral: ``promotions``, never hits/misses) in saved order,
        so the LRU order and -- when the active policy matches the saved
        one -- the keep-scores survive a restart.  Entries whose disk file
        is gone are skipped; a missing or corrupt hot-set file loads
        nothing.  Returns the number of entries promoted.
        """
        try:
            with Path(path).open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            entries = list(payload["entries"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return 0
        seed_scores = (
            self.policy is not None and payload.get("policy") == self.policy_name
        )
        loaded = 0
        for entry in entries:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                continue
            key = str(entry["fingerprint"])
            if not self.promote(key):
                continue
            loaded += 1
            if seed_scores:
                with self._lock:
                    self.policy.seed(dict(entry, fingerprint=key))
        return loaded

    # -- maintenance ----------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop every in-memory entry (and, optionally, the disk tier)."""
        with self._lock:
            self._entries.clear()
            if self.policy is not None:
                self.policy.clear()
        if disk and self.disk_path is not None and self.disk_path.is_dir():
            for file in self.disk_path.glob("*.json"):
                try:
                    file.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self)}, capacity={self.capacity}, "
            f"disk={str(self.disk_path) if self.disk_path else None!r})"
        )
