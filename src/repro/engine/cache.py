"""Content-addressed result cache: in-memory LRU plus optional on-disk JSON.

Keys are the hex digests produced by :mod:`repro.engine.fingerprint`; values
are :class:`~repro.core.result.SynthesisResult` objects.  The in-memory layer
is an ordered-dict LRU guarded by a lock (the service's batching loop and the
thread backend both touch it concurrently); the optional disk layer writes one
``<digest>.json`` file per entry, so caches survive process restarts and can
be shared between a CLI run and a service instance.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.core.result import SynthesisResult

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, exposed in service telemetry."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """LRU of fingerprint -> :class:`SynthesisResult` with optional disk tier.

    Args:
        capacity: Maximum in-memory entries; the least recently used entry is
            evicted first.  Evicted entries remain on disk (when a disk path
            is configured), so a later lookup can still be served without a
            solve.
        disk_path: Directory for the JSON tier; created on demand.  ``None``
            keeps the cache purely in memory.
    """

    def __init__(self, capacity: int = 512, disk_path: str | Path | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.disk_path = Path(disk_path) if disk_path is not None else None
        self.stats = CacheStats()
        self._entries: OrderedDict[str, SynthesisResult] = OrderedDict()
        self._lock = threading.Lock()

    # -- lookup / store -------------------------------------------------------

    def get(self, key: str) -> SynthesisResult | None:
        """Return a copy of the cached result for a fingerprint (``None`` on miss).

        Callers get a private copy: mutating the returned weights or
        diagnostics cannot corrupt the entry served to the next hit.
        """
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return result.copy()
        result = self._load_from_disk(key)
        with self._lock:
            if result is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(key, result.copy())
            else:
                self.stats.misses += 1
        return result

    def put(self, key: str, result: SynthesisResult) -> None:
        """Store a result under a fingerprint (memory and, if set, disk)."""
        with self._lock:
            self.stats.stores += 1
            # Store a private copy: the caller keeps (and may mutate) its own.
            self._insert(key, result.copy())
        self._write_to_disk(key, result)

    def get_or_compute(
        self, key: str, compute: Callable[[], SynthesisResult]
    ) -> tuple[SynthesisResult, bool]:
        """Return ``(result, cache_hit)``, invoking ``compute`` only on a miss."""
        result = self.get(key)
        if result is not None:
            return result, True
        result = compute()
        self.put(key, result)
        return result, False

    def _insert(self, key: str, result: SynthesisResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # -- disk tier ------------------------------------------------------------

    def _disk_file(self, key: str) -> Path | None:
        if self.disk_path is None:
            return None
        return self.disk_path / f"{key}.json"

    def _load_from_disk(self, key: str) -> SynthesisResult | None:
        path = self._disk_file(key)
        if path is None or not path.is_file():
            return None
        try:
            with path.open("r", encoding="utf-8") as handle:
                return SynthesisResult.from_dict(json.load(handle))
        except (json.JSONDecodeError, KeyError, ValueError, OSError):
            # A torn or stale file is a miss, not an error.
            return None

    def _write_to_disk(self, key: str, result: SynthesisResult) -> None:
        path = self._disk_file(key)
        if path is None:
            return
        # Everything disk-related sits inside the guard: a result that cannot
        # be serialized (exotic diagnostics), an unwritable directory, or a
        # full disk must not fail a solve that already succeeded -- the entry
        # simply stays memory-only.
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename keeps concurrent readers from seeing torn files.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(result.to_dict(), handle)
            os.replace(tmp_name, path)
        except (OSError, TypeError, ValueError):
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    # -- maintenance ----------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop every in-memory entry (and, optionally, the disk tier)."""
        with self._lock:
            self._entries.clear()
        if disk and self.disk_path is not None and self.disk_path.is_dir():
            for file in self.disk_path.glob("*.json"):
                try:
                    file.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self)}, capacity={self.capacity}, "
            f"disk={str(self.disk_path) if self.disk_path else None!r})"
        )
