"""Content-addressed fingerprints for problems, cells, and solver options.

The result cache and the query service key everything by a canonical SHA-256
digest of the *semantic* content of a request: the ranking-attribute matrix
(bit-exact bytes), the given positions, the attribute names, the constraint
set, the tolerances, the method name, and the solver options.  Two problems
built independently from the same data therefore collide on purpose -- that is
what makes the cache content-addressed rather than identity-addressed.

Digests deliberately avoid Python's builtin ``hash`` (randomized per process
via ``PYTHONHASHSEED``) and anything repr-based that could vary across NumPy
versions; floats are serialized through the stdlib JSON encoder (shortest
round-trip repr) and arrays through their raw little-endian bytes.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.core import chunking
from repro.core.cells import Cell
from repro.core.problem import RankingProblem
from repro.core.result import jsonable

__all__ = [
    "canonical_json",
    "compute_problem_digest",
    "fingerprint_problem",
    "fingerprint_cell",
    "fingerprint_options",
    "fingerprint",
]


def canonical_json(value) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace, sanitized types."""
    return json.dumps(jsonable(value), sort_keys=True, separators=(",", ":"))


def _array_bytes(array: np.ndarray, dtype) -> bytes:
    """Shape-prefixed, dtype-normalized, contiguous little-endian bytes."""
    array = np.ascontiguousarray(array, dtype=dtype)
    if array.dtype.byteorder == ">":  # pragma: no cover - big-endian platforms
        array = array.astype(array.dtype.newbyteorder("<"))
    return repr(array.shape).encode() + array.tobytes()


def _hash_matrix(h, matrix: np.ndarray) -> None:
    """Feed a matrix into ``h`` as float64 bytes, in bounded-memory blocks.

    Emits the exact byte stream of ``_array_bytes(matrix, np.float64)`` --
    the full shape prefix, then row-major little-endian float64 bytes -- but
    normalizes row blocks one at a time, so hashing a memory-mapped or
    float32 million-row matrix never materializes the full float64 copy.
    Digests are unchanged for every existing problem.
    """
    h.update(repr(matrix.shape).encode())
    n = matrix.shape[0]
    row_bytes = max(int(np.prod(matrix.shape[1:], dtype=np.int64)) * 8, 1)
    rows = chunking.chunk_rows_for(row_bytes, n, None)
    if rows < n:
        chunking.record_chunked_eval(rows * row_bytes)
    for start in range(0, n, rows):
        block = np.ascontiguousarray(matrix[start : start + rows], dtype=np.float64)
        if block.dtype.byteorder == ">":  # pragma: no cover - big-endian
            block = block.astype(block.dtype.newbyteorder("<"))
        h.update(block.tobytes())


def compute_problem_digest(problem: RankingProblem) -> str:
    """Compute the raw SHA-256 digest of a problem (no memoization).

    The memo lives on the :class:`RankingProblem` instance itself (see
    :meth:`RankingProblem.fingerprint`): computed once, invalidated never --
    the instance is immutable by convention, and an instance attribute beats
    a side-table both on lookup cost and on lifetime management.
    """
    h = hashlib.sha256()
    h.update(b"matrix:")
    _hash_matrix(h, problem.matrix)
    h.update(b"positions:")
    h.update(_array_bytes(problem.ranking.positions, np.int64))
    h.update(b"attributes:")
    h.update(canonical_json(problem.attributes).encode())
    h.update(b"constraints:")
    h.update(canonical_json(problem.constraints.to_dict()).encode())
    h.update(b"tolerances:")
    h.update(canonical_json(problem.tolerances.to_dict()).encode())
    return h.hexdigest()


def fingerprint_problem(problem: RankingProblem) -> str:
    """Stable digest of everything that influences a solve on this problem.

    Non-ranking columns (player names, institution names) are excluded: they
    cannot change any solver's output, and excluding them lets semantically
    identical problems share cache entries.  The digest is memoized on the
    problem object -- the service front-end fingerprints every incoming
    request on the event loop, so repeat submissions of the same problem
    must not re-hash the full matrix.
    """
    return problem.fingerprint()


def fingerprint_cell(cell: Cell) -> str:
    """Stable digest of a weight-space cell."""
    h = hashlib.sha256()
    h.update(b"cell:")
    h.update(_array_bytes(cell.lower, np.float64))
    h.update(_array_bytes(cell.upper, np.float64))
    return h.hexdigest()


def fingerprint_options(options) -> str:
    """Canonical JSON of a solver-options object (or plain params mapping).

    Options *objects* are tagged with their module-qualified class name: two
    different methods' options dataclasses can serialize to identical dicts
    (both the exact solver and TREE have a ``node_limit`` / ``time_limit`` /
    ``lp_method`` surface), and without the tag such requests would collide
    in the content-addressed cache.  The module prefix matters because
    plugin methods registered at runtime may reuse a class name.  Plain
    mappings are the registry's wire format, where the method name (hashed
    separately by :func:`fingerprint`) carries the identity instead.
    """
    if options is None:
        return "null"
    if hasattr(options, "to_dict"):
        tag = f"{type(options).__module__}.{type(options).__qualname__}"
        return tag + ":" + canonical_json(options.to_dict())
    return canonical_json(options)


def fingerprint(
    problem: RankingProblem,
    method: str = "",
    options=None,
    cell: Cell | None = None,
) -> str:
    """Digest of a full solve request: problem + method + options (+ cell)."""
    h = hashlib.sha256()
    h.update(b"problem:")
    h.update(fingerprint_problem(problem).encode())
    h.update(b"method:")
    h.update(method.encode())
    h.update(b"options:")
    h.update(fingerprint_options(options).encode())
    if cell is not None:
        h.update(b"cell:")
        h.update(fingerprint_cell(cell).encode())
    return h.hexdigest()
