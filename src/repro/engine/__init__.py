"""Execution substrate: pluggable executors, fingerprints, and a result cache.

SYM-GD's decomposition into independent per-cell solves is the paper's
scalability story; this package is where the reproduction turns it into
throughput.  It sits between :mod:`repro.core` (the algorithms) and
:mod:`repro.service` (the async front-end):

* :mod:`repro.engine.executor` -- ``serial`` / ``thread`` / ``process``
  backends behind one ``map_cells`` interface;
* :mod:`repro.engine.fingerprint` -- canonical SHA-256 digests of problems,
  cells, and solver options (content addressing);
* :mod:`repro.engine.cache` -- LRU + optional on-disk JSON result cache;
* :mod:`repro.engine.policy` -- pluggable cache policies (cost x frequency
  scoring, hot-set persistence metadata, prewarm prediction);
* :mod:`repro.engine.engine` -- :class:`SolveEngine`, the cached, batched,
  parallel request executor everything above builds on.
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.context import SolveArtifacts, SolveContext
from repro.engine.engine import IncrementalStats, SolveEngine, SolveOutcome, SolveRequest
from repro.engine.policy import (
    POLICY_NAMES,
    CachePolicy,
    CostAwarePolicy,
    make_policy,
    predict_next_deltas,
)
from repro.engine.executor import (
    BACKEND_NAMES,
    Executor,
    ExecutorStats,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cpu_count,
    get_executor,
)
from repro.engine.fingerprint import (
    canonical_json,
    fingerprint,
    fingerprint_cell,
    fingerprint_options,
    fingerprint_problem,
)
from repro.engine.tasks import (
    SOLVE_METHODS,
    build_solver,
    effective_params,
    solve_request_task,
    validate_params,
)

__all__ = [
    "BACKEND_NAMES",
    "CachePolicy",
    "CacheStats",
    "CostAwarePolicy",
    "Executor",
    "ExecutorStats",
    "POLICY_NAMES",
    "ProcessExecutor",
    "ResultCache",
    "SOLVE_METHODS",
    "SerialExecutor",
    "IncrementalStats",
    "SolveArtifacts",
    "SolveContext",
    "SolveEngine",
    "SolveOutcome",
    "SolveRequest",
    "ThreadExecutor",
    "available_cpu_count",
    "build_solver",
    "canonical_json",
    "effective_params",
    "validate_params",
    "fingerprint",
    "fingerprint_cell",
    "fingerprint_options",
    "fingerprint_problem",
    "get_executor",
    "make_policy",
    "predict_next_deltas",
    "solve_request_task",
]
