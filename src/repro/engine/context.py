"""Cross-solve artifact carrier for delta-aware incremental synthesis.

A :class:`SolveContext` travels with one solve and does two jobs:

* **Warm side (in)** -- artifacts captured from the parent solve of an edit
  chain: the parent's root-LP basis (plus the standard-form shape it is
  valid for), its incumbent weights, and its batched
  :class:`~repro.core.cells.CellBoundEvaluator`.  Solvers consume what they
  can; everything is best-effort and shape-guarded, with the cold path as
  the universal fallback.
* **Capture side (out)** -- the same artifacts of *this* solve, recorded so
  the engine can stash them for the next edit in the chain.

The default configuration is **exact-parity safe**: only artifacts that
cannot change a solver's output are reused -- composed-fingerprint cache
dedupe, preserved problem memos, and the batched cell evaluator (whose
incremental row updates are bit-identical to a rebuild).  ``reuse_basis``
and ``reuse_incumbent`` are opt-in (sessions expose both as
``aggressive=True``): a warm root basis or a seeded incumbent genuinely
saves simplex pivots, but it steers the search -- under tied optima or a
truncated node budget the solver may return a *different* representative
(same guarantees, not bitwise the same result), which is exactly what the
exact-parity default must never do.

This module is an engine leaf: solvers receive the context duck-typed (the
core layer never imports the engine), and nothing here imports the rest of
:mod:`repro.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SolveArtifacts", "SolveContext"]


@dataclass
class SolveArtifacts:
    """Reusable leftovers of one solve, keyed by the request they came from.

    Attributes:
        request_fingerprint: Fingerprint of the request that produced these
            artifacts (the engine's side-table key).
        problem_fingerprint: Fingerprint of the problem that was solved.
        weights: The result's weight vector (incumbent candidate for an
            opt-in ``reuse_incumbent`` child solve).
        root_basis: Optimal standard-form basis of the root LP relaxation
            (built-in simplex backend only; shape-checked against the
            consumer's prepared standard form inside the branch-and-bound).
        cell_evaluator: A :class:`~repro.core.cells.CellBoundEvaluator`
            built for the problem (reused or incrementally row-updated for
            tuple deltas by :meth:`SolveContext.evaluator_for`).
    """

    request_fingerprint: str = ""
    problem_fingerprint: str = ""
    weights: np.ndarray | None = None
    root_basis: np.ndarray | None = None
    cell_evaluator: object | None = None


@dataclass
class SolveContext:
    """One solve's view of the edit chain: warm artifacts in, captured out.

    Attributes:
        warm: Artifacts of the parent solve (``None`` on a cold chain head).
        reuse_basis: Feed the parent's root basis to the exact solver's root
            LP.  Saves pivots, but under degenerate/tied optima the root LP
            may land on a different optimal vertex and steer the search, so
            it is off by default (exact parity) and on in aggressive mode.
        reuse_incumbent: Feed the parent's weights as an extra incumbent
            (tightens pruning; can change which optimal solution a
            truncated search reports; aggressive mode only).
        captured: Artifacts recorded by the solver(s) this context rode
            along with.
    """

    warm: SolveArtifacts | None = None
    reuse_basis: bool = False
    reuse_incumbent: bool = False
    captured: SolveArtifacts = field(default_factory=SolveArtifacts)

    # -- warm side (consumed by solvers) --------------------------------------

    def warm_root_basis(self) -> np.ndarray | None:
        """The parent's root basis, or ``None`` when there is nothing to reuse."""
        if self.warm is None:
            return None
        return self.warm.root_basis

    def warm_weights(self) -> np.ndarray | None:
        """The parent's result weights (incumbent candidate), if any."""
        if self.warm is None:
            return None
        return self.warm.weights

    # -- capture side (filled by solvers) -------------------------------------

    def capture_root_basis(self, basis: np.ndarray | None) -> None:
        """Record this solve's root basis for the next edit in the chain."""
        if basis is not None:
            self.captured.root_basis = np.asarray(basis, dtype=int).copy()

    def capture_weights(self, weights) -> None:
        """Record this solve's result weights."""
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if np.all(np.isfinite(weights)):
                self.captured.weights = weights.copy()

    # -- cell-bound evaluator reuse -------------------------------------------

    def evaluator_for(self, problem):
        """A :class:`CellBoundEvaluator` for ``problem``, reusing the parent's.

        Falls back from (a) the parent evaluator verbatim when the problem
        fingerprint still matches, through (b) an incremental row update when
        only unranked tuples were appended or dropped (see
        :meth:`CellBoundEvaluator.updated_for`), to (c) a fresh build.  The
        updated/rebuilt evaluator is also captured for the next edit.
        """
        from repro.core.cells import CellBoundEvaluator

        evaluator = None
        if self.warm is not None and self.warm.cell_evaluator is not None:
            parent = self.warm.cell_evaluator
            if self.warm.problem_fingerprint == problem.fingerprint():
                evaluator = parent
            else:
                evaluator = parent.updated_for(problem)
        if evaluator is None:
            evaluator = CellBoundEvaluator(problem)
        self.captured.cell_evaluator = evaluator
        return evaluator
