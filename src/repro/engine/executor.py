"""Pluggable execution backends for independent per-cell work.

SYM-GD decomposes weight synthesis into many independent solves -- per-cell
MILPs, per-seed descents, per-chunk sampling trials, per-cell bound
evaluations.  The seed implementation ran all of them serially on one core;
this module is the substrate that fans them out.

Every backend exposes the same tiny interface, ``map_cells(fn, items)``:
apply a picklable function to every item and return the results *in order*.
The consumers (:meth:`repro.core.symgd.SymGD.solve_multi_seed`,
:func:`repro.core.cells.cell_error_bounds_many`,
:class:`repro.baselines.sampling.SamplingBaseline`, and
:class:`repro.engine.engine.SolveEngine`) only depend on that method, so they
accept any of the three backends -- or any duck-typed stand-in -- without
caring which one they got.

Backends:

* ``serial``  -- plain loop; the baseline and the fallback.
* ``thread``  -- ``ThreadPoolExecutor``; helps when tasks release the GIL
  (NumPy-heavy bound sweeps) and costs no pickling.
* ``process`` -- ``ProcessPoolExecutor``; true parallelism for the
  Python-heavy MILP solves, at the price of pickling each payload.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

__all__ = [
    "ExecutorStats",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_cpu_count",
    "get_executor",
    "BACKEND_NAMES",
]

#: Backend names accepted by :func:`get_executor`.
BACKEND_NAMES: tuple[str, ...] = ("serial", "thread", "process")


def available_cpu_count() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


@dataclass
class ExecutorStats:
    """Counters every backend maintains (useful in service telemetry)."""

    batches: int = 0
    tasks: int = 0

    def as_dict(self) -> dict:
        return {"batches": self.batches, "tasks": self.tasks}


class Executor:
    """Base class: ordered map over independent tasks."""

    name = "base"

    def __init__(self, max_workers: int | None = None) -> None:
        # Explicit None check: 0 must trip the validation below, not silently
        # resolve to "all CPUs".
        self.max_workers = (
            available_cpu_count() if max_workers is None else int(max_workers)
        )
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.stats = ExecutorStats()
        #: Chaos hook: called as ``fault_hook(len(items))`` before each
        #: dispatch; raising aborts the batch (stand-in for a solver-task
        #: crash).  ``None`` costs one attribute check per map.
        self.fault_hook = None

    def map_cells(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item; results come back in input order.

        The name reflects the primary workload -- per-cell solves -- but any
        independent task collection works (seeds, sample chunks, requests).
        """
        raise NotImplementedError

    def _count(self, items: Sequence) -> None:
        # Every backend's map_cells calls this exactly once per dispatch, so
        # it doubles as the chaos injection point: a hook that raises aborts
        # the batch before any task runs (parent-side, which is what makes
        # it work identically across serial/thread/process backends).
        hook = self.fault_hook
        if hook is not None:
            hook(len(items))
        self.stats.batches += 1
        self.stats.tasks += len(items)

    def shutdown(self) -> None:
        """Release pooled workers (idempotent; serial backend is a no-op)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialExecutor(Executor):
    """Run every task inline, one after the other."""

    name = "serial"

    def map_cells(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        self._count(items)
        return [fn(item) for item in items]


class ThreadExecutor(Executor):
    """Fan tasks out over a lazily created thread pool."""

    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._pool: ThreadPoolExecutor | None = None

    def map_cells(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        self._count(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return list(self._pool.map(fn, items))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Fan tasks out over a lazily created process pool.

    Task functions and payloads must be picklable -- the engine keeps its
    task functions at module level (:mod:`repro.engine.tasks`,
    ``repro.core.symgd._solve_from_seed``, ...) for exactly this reason.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._pool: ProcessPoolExecutor | None = None

    def map_cells(self, fn: Callable, items: Sequence) -> list:
        items = list(items)
        self._count(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        chunksize = max(1, len(items) // (self.max_workers * 4))
        return list(self._pool.map(fn, items, chunksize=chunksize))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def get_executor(
    backend: str | Executor = "serial",
    max_workers: int | None = None,
) -> Executor:
    """Resolve a backend name (or pass an executor through unchanged).

    Args:
        backend: ``"serial"``, ``"thread"``, ``"process"``, ``"auto"`` (process
            pool when more than one CPU is available, else serial), or an
            already-constructed :class:`Executor`.
        max_workers: Worker cap for pooled backends; defaults to the number of
            usable CPUs.
    """
    if isinstance(backend, Executor):
        return backend
    name = str(backend).lower()
    if name == "auto":
        name = "process" if available_cpu_count() > 1 else "serial"
    if name == "serial":
        return SerialExecutor(max_workers)
    if name == "thread":
        return ThreadExecutor(max_workers)
    if name == "process":
        return ProcessExecutor(max_workers)
    raise ValueError(
        f"unknown executor backend {backend!r}; expected one of {BACKEND_NAMES}"
    )
