"""AdaRank (Xu & Li, SIGIR 2007) adapted to tuple ranking.

AdaRank is a boosting algorithm that maintains a weight distribution over
training queries, repeatedly selects the weak ranker performing best under the
current distribution, and re-weights hard queries.  The paper applies it to
OPT with two adaptations (Section VI-A):

* weak rankers are single ranking attributes,
* the per-"query" unit is a ranked tuple, and a weak ranker's performance on a
  tuple is derived from how far the tuple lands from its given position when
  the relation is sorted by the combined scoring function.

The known failure mode, demonstrated in the paper's NBA experiments, is also
reproduced here: when one attribute correlates with the given ranking far more
than the others, that attribute is selected in every round and the final
scoring function degenerates to a single attribute.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult
from repro.core.scoring import induced_ranks

__all__ = ["AdaRankOptions", "AdaRankBaseline"]


@dataclass
class AdaRankOptions:
    """Configuration of the AdaRank adaptation.

    Attributes:
        num_rounds: Boosting rounds ``T``.
        allow_repeats: Allow the same attribute to be selected in multiple
            rounds (AdaRank's behaviour; the degenerate case the paper notes).
    """

    num_rounds: int = 20
    allow_repeats: bool = True

    def to_dict(self) -> dict:
        """Canonical JSON-serializable representation (for fingerprinting)."""
        return {
            "num_rounds": int(self.num_rounds),
            "allow_repeats": bool(self.allow_repeats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AdaRankOptions":
        return cls(
            num_rounds=int(data.get("num_rounds", 20)),
            allow_repeats=bool(data.get("allow_repeats", True)),
        )


class AdaRankBaseline:
    """Boosting over single-attribute weak rankers."""

    def __init__(self, options: AdaRankOptions | None = None) -> None:
        self.options = options or AdaRankOptions()

    def _per_tuple_performance(
        self, problem: RankingProblem, scores: np.ndarray
    ) -> np.ndarray:
        """Performance in ``[-1, 1]`` of a score vector on each ranked tuple.

        1 means the tuple sits exactly at its given position, -1 means it is
        as far away as possible.
        """
        positions = induced_ranks(scores, problem.tolerances.tie_eps)
        ranked = problem.top_k_indices()
        given = problem.ranking.positions[ranked]
        worst = max(problem.num_tuples - 1, 1)
        deviation = np.abs(positions[ranked] - given) / worst
        return 1.0 - 2.0 * deviation

    def solve(self, problem: RankingProblem) -> SynthesisResult:
        """Run the boosting rounds and return the combined scoring function."""
        options = self.options
        start = time.perf_counter()
        matrix = problem.matrix
        m = problem.num_attributes
        k = problem.k

        distribution = np.full(k, 1.0 / k)
        alphas = np.zeros(m)
        combined_scores = np.zeros(problem.num_tuples)
        chosen: list[int] = []

        # Pre-compute single-attribute performances (they do not change).
        attribute_performance = np.vstack(
            [self._per_tuple_performance(problem, matrix[:, j]) for j in range(m)]
        )

        for _ in range(options.num_rounds):
            weighted = attribute_performance @ distribution
            candidates = np.arange(m)
            if not options.allow_repeats and chosen:
                candidates = np.asarray([j for j in range(m) if j not in chosen])
                if candidates.size == 0:
                    break
            best_attribute = int(candidates[np.argmax(weighted[candidates])])
            perf = attribute_performance[best_attribute]

            positive = float(np.sum(distribution * (1.0 + perf)))
            negative = float(np.sum(distribution * (1.0 - perf)))
            if negative <= 1e-12:
                # The weak ranker is perfect under this distribution.
                alphas[best_attribute] += 1.0
                chosen.append(best_attribute)
                break
            alpha = 0.5 * np.log(max(positive, 1e-12) / negative)
            if alpha <= 0:
                break
            alphas[best_attribute] += alpha
            chosen.append(best_attribute)

            combined_scores = matrix @ alphas
            combined_perf = self._per_tuple_performance(problem, combined_scores)
            weights_update = np.exp(-combined_perf)
            total = float(weights_update.sum())
            if total <= 0 or not np.isfinite(total):
                break
            distribution = weights_update / total

        if float(alphas.sum()) <= 0:
            alphas = np.full(m, 1.0 / m)
        else:
            alphas = alphas / float(alphas.sum())

        elapsed = time.perf_counter() - start
        error = problem.error_of(alphas)
        return SynthesisResult(
            weights=alphas,
            attributes=list(problem.attributes),
            error=int(error),
            objective=float(error),
            optimal=False,
            method="adarank",
            solve_time=elapsed,
            iterations=len(chosen),
            diagnostics={
                "k": k,
                "selected_attributes": [problem.attributes[j] for j in chosen],
                "rounds": len(chosen),
            },
        )
