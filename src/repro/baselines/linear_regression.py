"""Linear regression on rank-derived labels (the LINEARREGRESSION competitor).

Following Example 2 of the paper, the tuple ranked at position ``i`` receives
the numeric label ``n - i + 1`` (higher label = better), unranked tuples are
treated as tied just below the ranked prefix, and an ordinary least-squares
(or non-negative least-squares) fit predicts the label from the ranking
attributes.  The fitted coefficients are then used as the scoring function.

The point of the baseline is precisely its weakness: it minimizes squared
label error, not position error, so it can prefer a function that predicts
scores accurately yet ranks tuples in the wrong order (Examples 2 and 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import RankingProblem
from repro.core.ranking import UNRANKED
from repro.core.result import SynthesisResult

__all__ = ["LinearRegressionBaseline"]


@dataclass
class LinearRegressionBaseline:
    """OLS / NNLS on rank labels.

    Attributes:
        non_negative: Constrain coefficients to be non-negative (the paper
            evaluates both settings in Example 3).
        include_unranked: Give unranked tuples a shared label just below the
            ranked prefix; when ``False`` the fit uses only the top-k tuples.
        fit_intercept: Include an intercept term (it does not affect the
            induced ranking but changes the fitted slope).
    """

    non_negative: bool = False
    include_unranked: bool = True
    fit_intercept: bool = True

    def solve(self, problem: RankingProblem) -> SynthesisResult:
        """Fit the regression and evaluate its position error."""
        start = time.perf_counter()
        matrix = problem.matrix
        positions = problem.ranking.positions
        n = problem.num_tuples

        ranked_mask = positions != UNRANKED
        labels = np.zeros(n, dtype=float)
        labels[ranked_mask] = n - positions[ranked_mask] + 1
        labels[~ranked_mask] = float(n - problem.k)

        if self.include_unranked:
            fit_rows = np.arange(n)
        else:
            fit_rows = np.where(ranked_mask)[0]
        features = matrix[fit_rows]
        targets = labels[fit_rows]

        coefficients = self._fit(features, targets)
        elapsed = time.perf_counter() - start
        error = problem.error_of(coefficients)

        return SynthesisResult(
            weights=coefficients,
            attributes=list(problem.attributes),
            error=int(error),
            objective=float(error),
            optimal=False,
            method="linear_regression_nn" if self.non_negative else "linear_regression",
            solve_time=elapsed,
            diagnostics={
                "k": problem.k,
                "non_negative": self.non_negative,
                "fit_rows": int(len(fit_rows)),
            },
        )

    def _fit(self, features: np.ndarray, targets: np.ndarray) -> np.ndarray:
        num_attributes = features.shape[1]
        if self.fit_intercept:
            design = np.column_stack([features, np.ones(features.shape[0])])
        else:
            design = features

        if self.non_negative:
            from scipy.optimize import nnls

            if self.fit_intercept:
                # Keep the intercept unconstrained by absorbing it: center the
                # targets and features, run NNLS on the centered problem.
                feature_means = features.mean(axis=0)
                target_mean = targets.mean()
                centered = features - feature_means
                solution, _ = nnls(centered, targets - target_mean)
                return solution
            solution, _ = nnls(design, targets)
            return solution[:num_attributes]

        solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        return solution[:num_attributes]
