"""Random-sampling baseline (the SAMPLING competitor).

SAMPLING draws random weight vectors from the simplex (a Dirichlet
distribution), discards vectors that violate the problem's weight constraints,
evaluates the position error of the survivors, and keeps the best one.  The
paper gives it a time budget equal to RankHow's runtime; this implementation
supports both a time budget and a fixed sample budget so that benchmarks are
reproducible and unit tests are fast.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult

__all__ = ["SamplingOptions", "SamplingBaseline"]


@dataclass
class SamplingOptions:
    """Configuration of the sampling baseline.

    Attributes:
        num_samples: Maximum number of weight vectors to draw.
        time_limit: Optional wall-clock budget in seconds (whichever of the
            two budgets is hit first stops the search).
        concentration: Dirichlet concentration; 1.0 is uniform over the
            simplex, smaller values favour sparse vectors.
        seed: Random seed.
        include_corners: Also evaluate the single-attribute corner vectors and
            the uniform center (cheap and often competitive).
    """

    num_samples: int = 1000
    time_limit: float | None = None
    concentration: float = 1.0
    seed: int = 0
    include_corners: bool = True


class SamplingBaseline:
    """Best-of-random-weights search under the problem constraints."""

    def __init__(self, options: SamplingOptions | None = None) -> None:
        self.options = options or SamplingOptions()

    def solve(self, problem: RankingProblem) -> SynthesisResult:
        """Draw weight vectors, keep the best feasible one."""
        options = self.options
        start = time.perf_counter()
        rng = np.random.default_rng(options.seed)
        m = problem.num_attributes

        best_weights = np.full(m, 1.0 / m)
        best_error = (
            problem.error_of(best_weights)
            if problem.weights_feasible(best_weights)
            else np.inf
        )
        evaluated = 0
        rejected = 0

        candidates: list[np.ndarray] = []
        if options.include_corners:
            candidates.extend(np.eye(m))

        def out_of_time() -> bool:
            return (
                options.time_limit is not None
                and time.perf_counter() - start > options.time_limit
            )

        draws = 0
        while draws < options.num_samples and not out_of_time():
            if candidates:
                weights = candidates.pop()
            else:
                weights = rng.dirichlet(np.full(m, options.concentration))
                draws += 1
            if not problem.weights_feasible(weights):
                rejected += 1
                continue
            error = problem.error_of(weights)
            evaluated += 1
            if error < best_error:
                best_error = error
                best_weights = np.asarray(weights, dtype=float)
                if best_error == 0:
                    break

        elapsed = time.perf_counter() - start
        if not np.isfinite(best_error):
            # No feasible sample found; report the uniform vector anyway.
            best_error = problem.error_of(best_weights)
        return SynthesisResult(
            weights=best_weights,
            attributes=list(problem.attributes),
            error=int(best_error),
            objective=float(best_error),
            optimal=False,
            method="sampling",
            solve_time=elapsed,
            iterations=evaluated,
            diagnostics={
                "k": problem.k,
                "evaluated": evaluated,
                "rejected": rejected,
                "num_samples": options.num_samples,
            },
        )
