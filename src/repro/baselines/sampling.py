"""Random-sampling baseline (the SAMPLING competitor).

SAMPLING draws random weight vectors from the simplex (a Dirichlet
distribution), discards vectors that violate the problem's weight constraints,
evaluates the position error of the survivors, and keeps the best one.  The
paper gives it a time budget equal to RankHow's runtime; this implementation
supports both a time budget and a fixed sample budget so that benchmarks are
reproducible and unit tests are fast.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import RankingProblem
from repro.core.result import SynthesisResult

__all__ = ["SamplingOptions", "SamplingBaseline"]


@dataclass
class SamplingOptions:
    """Configuration of the sampling baseline.

    Attributes:
        num_samples: Maximum number of weight vectors to draw.
        time_limit: Optional wall-clock budget in seconds (whichever of the
            two budgets is hit first stops the search).
        concentration: Dirichlet concentration; 1.0 is uniform over the
            simplex, smaller values favour sparse vectors.
        seed: Random seed.
        include_corners: Also evaluate the single-attribute corner vectors and
            the uniform center (cheap and often competitive).
    """

    num_samples: int = 1000
    time_limit: float | None = None
    concentration: float = 1.0
    seed: int = 0
    include_corners: bool = True
    chunk_size: int = 500

    def to_dict(self) -> dict:
        """Canonical JSON-serializable representation (for fingerprinting)."""
        return {
            "num_samples": int(self.num_samples),
            "time_limit": None if self.time_limit is None else float(self.time_limit),
            "concentration": float(self.concentration),
            "seed": int(self.seed),
            "include_corners": bool(self.include_corners),
            "chunk_size": int(self.chunk_size),
        }


def _sampling_chunk(payload: tuple) -> dict:
    """Evaluate one deterministic chunk of samples (picklable for pools).

    Each chunk owns an independent random stream seeded by
    ``(options.seed, chunk_index)``, so the set of sampled vectors -- and
    therefore the merged best -- does not depend on the executor backend or
    the worker count.  Chunk 0 mirrors the serial path exactly (uniform as
    the uncounted baseline, corners evaluated last-first), so tie-breaking
    matches the serial search.
    """
    problem, options, chunk_index, num_samples = payload
    rng = np.random.default_rng([options.seed, chunk_index])
    m = problem.num_attributes
    best_error = np.inf
    best_weights: np.ndarray | None = None
    evaluated = 0
    rejected = 0

    candidates: list[np.ndarray] = []
    if chunk_index == 0:
        uniform = np.full(m, 1.0 / m)
        if problem.weights_feasible(uniform):
            best_error = problem.error_of(uniform)
            best_weights = uniform
        if options.include_corners:
            candidates.extend(np.eye(m))
    draws = 0
    while draws < num_samples or candidates:
        if candidates:
            weights = candidates.pop()
        else:
            weights = rng.dirichlet(np.full(m, options.concentration))
            draws += 1
        if not problem.weights_feasible(weights):
            rejected += 1
            continue
        error = problem.error_of(weights)
        evaluated += 1
        if error < best_error:
            best_error = error
            best_weights = np.asarray(weights, dtype=float)
            if best_error == 0:
                # Nothing can beat error 0 under the strict-< merge; stopping
                # early is deterministic per chunk, so backend parity holds.
                break
    return {
        "best_error": float(best_error),
        "best_weights": best_weights,
        "evaluated": evaluated,
        "rejected": rejected,
    }


class SamplingBaseline:
    """Best-of-random-weights search under the problem constraints."""

    def __init__(
        self,
        options: SamplingOptions | None = None,
        executor=None,
    ) -> None:
        """Create the baseline.

        Args:
            options: Sampling configuration.
            executor: Anything exposing ``map_cells(fn, items)`` (see
                :mod:`repro.engine.executor`).  When given and no wall-clock
                budget is set, the sample budget is split into fixed-size
                chunks evaluated in parallel; results are identical for every
                backend.  Time-budgeted runs stay on the serial path because a
                wall-clock budget is inherently order-dependent.
        """
        self.options = options or SamplingOptions()
        self.executor = executor

    def solve(self, problem: RankingProblem) -> SynthesisResult:
        """Draw weight vectors, keep the best feasible one."""
        options = self.options
        if self.executor is not None and options.time_limit is None:
            return self._solve_chunked(problem)
        start = time.perf_counter()
        rng = np.random.default_rng(options.seed)
        m = problem.num_attributes

        best_weights = np.full(m, 1.0 / m)
        best_error = (
            problem.error_of(best_weights)
            if problem.weights_feasible(best_weights)
            else np.inf
        )
        evaluated = 0
        rejected = 0

        candidates: list[np.ndarray] = []
        if options.include_corners:
            candidates.extend(np.eye(m))

        def out_of_time() -> bool:
            return (
                options.time_limit is not None
                and time.perf_counter() - start > options.time_limit
            )

        draws = 0
        while draws < options.num_samples and not out_of_time():
            if candidates:
                weights = candidates.pop()
            else:
                weights = rng.dirichlet(np.full(m, options.concentration))
                draws += 1
            if not problem.weights_feasible(weights):
                rejected += 1
                continue
            error = problem.error_of(weights)
            evaluated += 1
            if error < best_error:
                best_error = error
                best_weights = np.asarray(weights, dtype=float)
                if best_error == 0:
                    break

        elapsed = time.perf_counter() - start
        if not np.isfinite(best_error):
            # No feasible sample found; report the uniform vector anyway.
            best_error = problem.error_of(best_weights)
        return SynthesisResult(
            weights=best_weights,
            attributes=list(problem.attributes),
            error=int(best_error),
            objective=float(best_error),
            optimal=False,
            method="sampling",
            solve_time=elapsed,
            iterations=evaluated,
            diagnostics={
                "k": problem.k,
                "evaluated": evaluated,
                "rejected": rejected,
                "num_samples": options.num_samples,
            },
        )

    def _solve_chunked(self, problem: RankingProblem) -> SynthesisResult:
        """Parallel path: fixed-size sample chunks fanned out over the executor."""
        options = self.options
        start = time.perf_counter()
        chunk_size = max(int(options.chunk_size), 1)
        num_chunks = max(-(-options.num_samples // chunk_size), 1)
        payloads = []
        remaining = options.num_samples
        for chunk_index in range(num_chunks):
            take = min(chunk_size, remaining)
            payloads.append((problem, options, chunk_index, take))
            remaining -= take
        outcomes = list(self.executor.map_cells(_sampling_chunk, payloads))

        m = problem.num_attributes
        best_weights = np.full(m, 1.0 / m)
        best_error = np.inf
        evaluated = 0
        rejected = 0
        # Strict less-than keeps the earliest chunk on ties, making the merged
        # result independent of the backend and worker count.
        for outcome in outcomes:
            evaluated += outcome["evaluated"]
            rejected += outcome["rejected"]
            if outcome["best_weights"] is not None and outcome["best_error"] < best_error:
                best_error = outcome["best_error"]
                best_weights = outcome["best_weights"]
        if not np.isfinite(best_error):
            best_error = problem.error_of(best_weights)
        return SynthesisResult(
            weights=np.asarray(best_weights, dtype=float),
            attributes=list(problem.attributes),
            error=int(best_error),
            objective=float(best_error),
            optimal=False,
            method="sampling",
            solve_time=time.perf_counter() - start,
            iterations=evaluated,
            diagnostics={
                "k": problem.k,
                "evaluated": evaluated,
                "rejected": rejected,
                "num_samples": options.num_samples,
                "chunks": num_chunks,
            },
        )
