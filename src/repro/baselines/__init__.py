"""Competitor algorithms from Section VI of the paper.

* :class:`~repro.baselines.linear_regression.LinearRegressionBaseline` --
  ordinary / non-negative least squares on rank-derived labels.
* :class:`~repro.baselines.ordinal_regression.OrdinalRegressionBaseline` --
  Srinivasan's LP ordinal regression, extended with tie and imprecision
  support (both can be switched off to recover the original technique).
* :class:`~repro.baselines.adarank.AdaRankBaseline` -- the AdaRank boosting
  algorithm adapted to tuple ranking with single-attribute weak rankers.
* :class:`~repro.baselines.sampling.SamplingBaseline` -- random weight
  vectors under the problem constraints within a time or sample budget.

Every baseline exposes ``solve(problem) -> SynthesisResult`` so the harness
and the benchmarks can swap algorithms freely.
"""

from repro.baselines.adarank import AdaRankBaseline, AdaRankOptions
from repro.baselines.linear_regression import LinearRegressionBaseline
from repro.baselines.ordinal_regression import (
    OrdinalRegressionBaseline,
    OrdinalRegressionOptions,
)
from repro.baselines.sampling import SamplingBaseline, SamplingOptions

__all__ = [
    "AdaRankBaseline",
    "AdaRankOptions",
    "LinearRegressionBaseline",
    "OrdinalRegressionBaseline",
    "OrdinalRegressionOptions",
    "SamplingBaseline",
    "SamplingOptions",
]
