"""Competitor algorithms from Section VI of the paper.

* :class:`~repro.baselines.linear_regression.LinearRegressionBaseline` --
  ordinary / non-negative least squares on rank-derived labels.
* :class:`~repro.baselines.ordinal_regression.OrdinalRegressionBaseline` --
  Srinivasan's LP ordinal regression, extended with tie and imprecision
  support (both can be switched off to recover the original technique).
* :class:`~repro.baselines.adarank.AdaRankBaseline` -- the AdaRank boosting
  algorithm adapted to tuple ranking with single-attribute weak rankers.
* :class:`~repro.baselines.sampling.SamplingBaseline` -- random weight
  vectors under the problem constraints within a time or sample budget.

Every baseline exposes ``solve(problem) -> SynthesisResult``.

.. deprecated:: 1.1
    Constructing the baseline classes directly through this package is
    deprecated: the registry (:func:`repro.get_method`, canonical names
    ``sampling`` / ``ordinal_regression`` / ``linear_regression`` /
    ``adarank``) and the :class:`repro.RankHowClient` facade are the
    supported entry points -- they add option validation, fingerprinting,
    caching, and executor fan-out.  Accessing a baseline class here still
    works but emits a :class:`DeprecationWarning`.  The options dataclasses
    remain first-class (they are the wire format).
"""

from repro.baselines.adarank import AdaRankOptions
from repro.baselines.ordinal_regression import OrdinalRegressionOptions
from repro.baselines.sampling import SamplingOptions

__all__ = [
    "AdaRankBaseline",
    "AdaRankOptions",
    "LinearRegressionBaseline",
    "OrdinalRegressionBaseline",
    "OrdinalRegressionOptions",
    "SamplingBaseline",
    "SamplingOptions",
]

#: Deprecated solver classes -> defining module.  Resolved lazily so the
#: warning fires exactly when a caller reaches for the class; internal code
#: (the registry adapters) imports from the defining modules directly and
#: stays silent.
_DEPRECATED_CLASSES = {
    "AdaRankBaseline": "repro.baselines.adarank",
    "LinearRegressionBaseline": "repro.baselines.linear_regression",
    "OrdinalRegressionBaseline": "repro.baselines.ordinal_regression",
    "SamplingBaseline": "repro.baselines.sampling",
}


def __getattr__(name: str):
    module_name = _DEPRECATED_CLASSES.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    import warnings

    warnings.warn(
        f"repro.baselines.{name} is deprecated; dispatch through the method "
        "registry instead (repro.get_method / repro.RankHowClient)",
        DeprecationWarning,
        stacklevel=2,
    )
    return getattr(importlib.import_module(module_name), name)
