"""Srinivasan-style LP ordinal regression (the ORDINALREGRESSION competitor).

Srinivasan (1976) learns a linear scoring function from an ordering by
minimizing the total *score penalty* of inverted pairs: for every pair where
the given ranking says ``a`` should beat ``b``, a slack variable absorbs any
shortfall of ``w.(x_a - x_b)`` below a separation margin, and the LP minimizes
the sum of slacks.  The loss is score-based, not position-based, which is why
(Section VII) it can strongly prefer the wrong function; it is nevertheless
fast and correlated with position error, so RankHow uses it as the default
SYM-GD seed.

Two extensions from the paper are implemented and can be switched off to
recover the original method:

* **ties** -- tuples sharing a given position get a pair of slack constraints
  keeping their score difference inside the tie tolerance;
* **numerical imprecision** -- the separation margin is ``eps1`` rather than
  an arbitrary tiny constant (Table III applies exactly this fix, "OR+").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import RankingProblem
from repro.core.ranking import UNRANKED
from repro.core.result import SynthesisResult
from repro.solvers.lp import LinearProgram

__all__ = ["OrdinalRegressionOptions", "OrdinalRegressionBaseline"]


@dataclass
class OrdinalRegressionOptions:
    """Configuration of the ordinal-regression baseline.

    Attributes:
        support_ties: Add tie constraints for tuples sharing a position.
        separation_margin: Required score gap for strictly ordered pairs; use
            the problem's ``eps1`` when ``None`` ("OR+"), or supply a small
            value such as ``1e-10`` to mimic the imprecision-oblivious "OR-".
        include_unranked: Require the last-ranked tuple to beat every unranked
            tuple (with slack); keeps the synthesized top-k near the top.
        lp_method: LP backend.
        apply_weight_constraints: Respect the problem's weight constraints
            (useful when the result seeds SYM-GD).
    """

    support_ties: bool = True
    separation_margin: float | None = None
    include_unranked: bool = True
    lp_method: str = "scipy"
    apply_weight_constraints: bool = True

    def to_dict(self) -> dict:
        """Canonical JSON-serializable representation (for fingerprinting)."""
        return {
            "support_ties": bool(self.support_ties),
            "separation_margin": (
                None
                if self.separation_margin is None
                else float(self.separation_margin)
            ),
            "include_unranked": bool(self.include_unranked),
            "lp_method": self.lp_method,
            "apply_weight_constraints": bool(self.apply_weight_constraints),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OrdinalRegressionOptions":
        margin = data.get("separation_margin")
        return cls(
            support_ties=bool(data.get("support_ties", True)),
            separation_margin=None if margin is None else float(margin),
            include_unranked=bool(data.get("include_unranked", True)),
            lp_method=data.get("lp_method", "scipy"),
            apply_weight_constraints=bool(
                data.get("apply_weight_constraints", True)
            ),
        )


class OrdinalRegressionBaseline:
    """LP ordinal regression over the given ranking."""

    def __init__(self, options: OrdinalRegressionOptions | None = None) -> None:
        self.options = options or OrdinalRegressionOptions()

    def solve(self, problem: RankingProblem) -> SynthesisResult:
        """Fit the LP and evaluate the resulting weights."""
        options = self.options
        start = time.perf_counter()
        matrix = problem.matrix
        positions = problem.ranking.positions
        m = problem.num_attributes
        margin = (
            problem.tolerances.eps1
            if options.separation_margin is None
            else options.separation_margin
        )
        tie_eps = max(problem.tolerances.tie_eps, 0.0)

        # Ranked tuples ordered by position; consecutive distinct positions
        # produce ordering constraints, equal positions produce tie constraints.
        ranked = [int(r) for r in problem.top_k_indices()]
        ordered_pairs: list[tuple[int, int]] = []  # (better, worse)
        tied_pairs: list[tuple[int, int]] = []
        for i in range(len(ranked) - 1):
            a, b = ranked[i], ranked[i + 1]
            if positions[a] == positions[b]:
                tied_pairs.append((a, b))
            else:
                ordered_pairs.append((a, b))
        if options.include_unranked and ranked:
            last = ranked[-1]
            for s in np.where(positions == UNRANKED)[0]:
                ordered_pairs.append((last, int(s)))

        num_order_slacks = len(ordered_pairs)
        num_tie_slacks = 2 * len(tied_pairs) if options.support_ties else 0
        total_vars = m + num_order_slacks + num_tie_slacks

        lp = LinearProgram(total_vars)
        objective = np.zeros(total_vars)
        objective[m:] = 1.0
        lp.set_objective(objective)
        lower = np.zeros(total_vars)
        upper = np.full(total_vars, np.inf)
        upper[:m] = 1.0
        lp.set_all_bounds(lower, upper)

        simplex_row = np.zeros(total_vars)
        simplex_row[:m] = 1.0
        lp.add_constraint(simplex_row, "==", 1.0)

        if options.apply_weight_constraints:
            for row, sense, rhs in problem.constraints.weight_rows(problem.attributes):
                full_row = np.zeros(total_vars)
                full_row[:m] = row
                lp.add_constraint(full_row, sense, rhs)

        slack_index = m
        for better, worse in ordered_pairs:
            row = np.zeros(total_vars)
            row[:m] = matrix[better] - matrix[worse]
            row[slack_index] = 1.0
            lp.add_constraint(row, ">=", margin)
            slack_index += 1

        if options.support_ties:
            for a, b in tied_pairs:
                difference = matrix[a] - matrix[b]
                row_upper = np.zeros(total_vars)
                row_upper[:m] = difference
                row_upper[slack_index] = -1.0
                lp.add_constraint(row_upper, "<=", tie_eps)
                slack_index += 1
                row_lower = np.zeros(total_vars)
                row_lower[:m] = difference
                row_lower[slack_index] = 1.0
                lp.add_constraint(row_lower, ">=", -tie_eps)
                slack_index += 1

        solution = lp.solve(method=options.lp_method)
        elapsed = time.perf_counter() - start

        if not solution.is_optimal:
            fallback = np.full(m, 1.0 / m)
            return SynthesisResult(
                weights=fallback,
                attributes=list(problem.attributes),
                error=int(problem.error_of(fallback)),
                objective=float("inf"),
                optimal=False,
                method="ordinal_regression",
                solve_time=elapsed,
                diagnostics={"k": problem.k, "status": solution.status.value},
            )

        weights = np.asarray(solution.x[:m], dtype=float)
        weights[weights < 0] = 0.0
        error = problem.error_of(weights)
        return SynthesisResult(
            weights=weights,
            attributes=list(problem.attributes),
            error=int(error),
            objective=float(solution.objective),
            optimal=False,
            method="ordinal_regression",
            solve_time=elapsed,
            diagnostics={
                "k": problem.k,
                "score_penalty": float(solution.objective),
                "ordered_pairs": len(ordered_pairs),
                "tied_pairs": len(tied_pairs),
                "margin": margin,
            },
        )
